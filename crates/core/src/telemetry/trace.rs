//! Hierarchical span tracing: span ids, parent/child structure, thread
//! attribution, and Chrome trace-event export.
//!
//! The flat [`Observer`](super::Observer) span hooks aggregate per-name
//! totals; this module records *individual* spans with structure. Every
//! [`Span`](super::Span) entered against an observer that opts in via
//! [`Observer::wants_span_records`](super::Observer::wants_span_records)
//! allocates a process-unique span id, captures its parent (the innermost
//! open span on the same thread, or an explicit parent for work handed to
//! `std::thread::scope` workers), and on drop delivers a completed
//! [`SpanRecord`] to the observer.
//!
//! [`TraceObserver`] is the standard sink: a bounded in-memory ring of
//! completed spans plus instantaneous events. When the ring is full the
//! *newest* records are dropped (and counted), so the head of a runaway
//! scan is preserved. Export with [`TraceObserver::to_chrome_trace`] — the
//! output loads in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! — or summarize with [`profile`](super::profile).
//!
//! Nothing here is canonical: span ids, timestamps and durations are
//! nondeterministic by nature, and trace output is explicitly outside the
//! byte-stability surface (`DESIGN.md` §10).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::json::Json;
use super::Observer;

/// Default ring capacity of a [`TraceObserver`] (completed spans).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Process-wide span id allocator. Ids start at 1; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide dense thread index allocator.
static NEXT_THREAD_IX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's dense index, assigned on first use.
    static THREAD_IX: u64 = NEXT_THREAD_IX.fetch_add(1, Ordering::Relaxed);
    /// Ids of the open traced spans on this thread, innermost last.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Allocates a fresh process-unique span id (never 0).
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's dense index (0, 1, 2, … in first-use order).
#[must_use]
pub fn thread_index() -> u64 {
    THREAD_IX.with(|ix| *ix)
}

/// The innermost open traced span on this thread, or 0 if none.
///
/// Capture this *before* `std::thread::scope` and hand it to
/// [`Span::enter_under`](super::Span::enter_under) so worker spans attach
/// to the dispatching span instead of floating as roots.
#[must_use]
pub fn current_span_id() -> u64 {
    OPEN_SPANS.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Pushes `id` as the innermost open span on this thread.
pub(super) fn push_open(id: u64) {
    OPEN_SPANS.with(|s| s.borrow_mut().push(id));
}

/// Removes `id` from this thread's open-span stack, wherever it sits.
///
/// Guards are usually dropped innermost-first, making this a pop; an
/// explicit out-of-order `drop` just removes the id mid-stack, so
/// overlapping guard lifetimes cannot corrupt attribution of the others.
pub(super) fn pop_open(id: u64) {
    OPEN_SPANS.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

/// One completed span, as delivered to
/// [`Observer::span_record`](super::Observer::span_record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span, 0 for a root.
    pub parent: u64,
    /// Registered span name.
    pub name: &'static str,
    /// Dense index of the thread the span ran on.
    pub thread: u64,
    /// Start, in [`clock::monotonic_ns`](super::clock::monotonic_ns) time.
    pub start_ns: u64,
    /// End, in the same timebase; `end_ns >= start_ns`.
    pub end_ns: u64,
    /// Static attribute pairs attached at entry (depth, width, …).
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One instantaneous record (an event or progress heartbeat).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantRecord {
    /// Registered event name.
    pub name: &'static str,
    /// Dense thread index.
    pub thread: u64,
    /// Timestamp in monotonic-clock nanoseconds.
    pub ts_ns: u64,
    /// Free-form detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct TraceRing {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    dropped: u64,
}

/// Bounded in-memory trace sink: completed spans and instant events.
///
/// Implements [`Observer`], so it can be handed to any engine's `_with`
/// twin — alone, or alongside a [`MetricsRegistry`](super::MetricsRegistry)
/// through a [`Fanout`](super::Fanout).
///
/// # Examples
///
/// ```
/// use layered_core::telemetry::{Span, TraceObserver};
///
/// let trace = TraceObserver::new();
/// {
///     let _outer = Span::enter(&trace, "layering.layer_scan");
///     let _inner = Span::enter(&trace, "valence.classify");
/// }
/// let spans = trace.spans();
/// assert_eq!(spans.len(), 2);
/// // Inner spans complete (and are recorded) first.
/// assert_eq!(spans[0].parent, spans[1].id);
/// ```
#[derive(Debug)]
pub struct TraceObserver {
    capacity: usize,
    inner: Mutex<TraceRing>,
}

impl Default for TraceObserver {
    fn default() -> Self {
        TraceObserver::new()
    }
}

impl TraceObserver {
    /// A trace sink holding up to [`DEFAULT_TRACE_CAPACITY`] spans.
    #[must_use]
    pub fn new() -> Self {
        TraceObserver::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A trace sink holding up to `capacity` completed spans (and as many
    /// instant records). Once full, newer records are counted but dropped.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceObserver {
            capacity: capacity.max(1),
            inner: Mutex::new(TraceRing::default()),
        }
    }

    /// All completed spans recorded so far, in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the ring mutex was poisoned.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .spans
            .clone()
    }

    /// All instant records (events, heartbeats) so far.
    ///
    /// # Panics
    ///
    /// Panics if the ring mutex was poisoned.
    #[must_use]
    pub fn instants(&self) -> Vec<InstantRecord> {
        self.inner
            .lock()
            .expect("trace ring poisoned")
            .instants
            .clone()
    }

    /// How many records were dropped because the ring was full.
    ///
    /// # Panics
    ///
    /// Panics if the ring mutex was poisoned.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").dropped
    }

    /// Exports the ring as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
    /// Perfetto.
    ///
    /// Spans become `B`/`E` duration-event pairs, instants become `i`
    /// events. Pairs are emitted by recursive descent over a per-thread
    /// containment forest, so the output is always balanced and properly
    /// nested: every `B` has exactly one matching `E` on the same thread,
    /// and a child interval that outlives its parent (possible only with
    /// explicit out-of-order drops) is clipped to the parent's end.
    #[must_use]
    pub fn to_chrome_trace(&self) -> Json {
        let spans = self.spans();
        let instants = self.instants();
        let mut events: Vec<Json> = Vec::with_capacity(spans.len() * 2 + instants.len());

        // Group span indices per thread, sorted for containment building.
        let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        for t in threads {
            let mut ix: Vec<usize> = (0..spans.len()).filter(|&i| spans[i].thread == t).collect();
            ix.sort_by_key(|&i| {
                (
                    spans[i].start_ns,
                    std::cmp::Reverse(spans[i].end_ns),
                    spans[i].id,
                )
            });
            emit_thread(&spans, &ix, &mut events);
        }
        for inst in &instants {
            events.push(Json::Object(vec![
                ("name".into(), Json::from(inst.name)),
                ("ph".into(), Json::from("i")),
                ("s".into(), Json::from("t")),
                ("ts".into(), Json::Number(inst.ts_ns as f64 / 1000.0)),
                ("pid".into(), Json::from(1u64)),
                ("tid".into(), Json::from(inst.thread)),
                (
                    "args".into(),
                    Json::Object(vec![("detail".into(), Json::from(inst.detail.as_str()))]),
                ),
            ]));
        }
        Json::Object(vec![("traceEvents".into(), Json::Array(events))])
    }
}

/// Emits balanced `B`/`E` pairs for one thread's spans (indices `ix`,
/// sorted by start ascending / end descending) by maintaining an explicit
/// open-span stack; clips children to their parent's end.
fn emit_thread(spans: &[SpanRecord], ix: &[usize], events: &mut Vec<Json>) {
    // Stack of (span index, clipped end).
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let close = |events: &mut Vec<Json>, spans: &[SpanRecord], (i, end): (usize, u64)| {
        events.push(Json::Object(vec![
            ("name".into(), Json::from(spans[i].name)),
            ("ph".into(), Json::from("E")),
            ("ts".into(), Json::Number(end as f64 / 1000.0)),
            ("pid".into(), Json::from(1u64)),
            ("tid".into(), Json::from(spans[i].thread)),
        ]));
    };
    for &i in ix {
        while let Some(&top) = stack.last() {
            if top.1 <= spans[i].start_ns {
                stack.pop();
                close(events, spans, top);
            } else {
                break;
            }
        }
        let clipped_end = match stack.last() {
            Some(&(_, parent_end)) => spans[i].end_ns.min(parent_end),
            None => spans[i].end_ns,
        };
        let mut args: Vec<(String, Json)> = vec![
            ("id".into(), Json::from(spans[i].id)),
            ("parent".into(), Json::from(spans[i].parent)),
        ];
        for &(k, v) in &spans[i].attrs {
            args.push((k.to_string(), Json::from(v)));
        }
        events.push(Json::Object(vec![
            ("name".into(), Json::from(spans[i].name)),
            ("ph".into(), Json::from("B")),
            ("ts".into(), Json::Number(spans[i].start_ns as f64 / 1000.0)),
            ("pid".into(), Json::from(1u64)),
            ("tid".into(), Json::from(spans[i].thread)),
            ("args".into(), Json::Object(args)),
        ]));
        stack.push((i, clipped_end));
    }
    while let Some(top) = stack.pop() {
        close(events, spans, top);
    }
}

impl Observer for TraceObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn wants_span_records(&self) -> bool {
        true
    }

    fn span_record(&self, record: &SpanRecord) {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.spans.len() < self.capacity {
            inner.spans.push(record.clone());
        } else {
            inner.dropped += 1;
        }
    }

    fn event(&self, name: &'static str, detail: &str) {
        self.instant(name, detail);
    }

    fn progress(&self, name: &'static str, detail: &str) {
        self.instant(name, detail);
    }
}

impl TraceObserver {
    fn instant(&self, name: &'static str, detail: &str) {
        let ts_ns = super::clock::monotonic_ns();
        let thread = thread_index();
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        if inner.instants.len() < self.capacity {
            inner.instants.push(InstantRecord {
                name,
                thread,
                ts_ns,
                detail: detail.to_string(),
            });
        } else {
            inner.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Span;
    use super::*;

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn nested_guards_record_parent_links() {
        let trace = TraceObserver::new();
        {
            let _outer = Span::enter(&trace, "space.build");
            {
                let _inner = Span::enter(&trace, "space.layer");
            }
        }
        let spans = trace.spans();
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "space.layer");
        assert_eq!(outer.name, "space.build");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn ring_capacity_drops_newest_and_counts() {
        let trace = TraceObserver::with_capacity(2);
        for _ in 0..4 {
            let _s = Span::enter(&trace, "sim.run");
        }
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.dropped(), 2);
    }

    #[test]
    fn chrome_trace_pairs_are_balanced() {
        let trace = TraceObserver::new();
        {
            let _a = Span::enter(&trace, "space.build");
            let _b = Span::enter(&trace, "space.layer");
        }
        trace.event("sim.violation", "agreement");
        let json = trace.to_chrome_trace();
        let rendered = json.to_string();
        let parsed = Json::parse(&rendered).expect("valid json");
        let Json::Array(events) = &parsed["traceEvents"] else {
            panic!("traceEvents must be an array in {rendered}");
        };
        let begins = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("E"))
            .count();
        let instants = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("i"))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        assert_eq!(instants, 1);
    }

    #[test]
    fn out_of_order_drops_keep_the_stack_sane() {
        let trace = TraceObserver::new();
        let a = Span::enter(&trace, "space.build");
        let b = Span::enter(&trace, "space.layer");
        drop(a); // outer dropped first, on purpose
        assert_eq!(current_span_id(), b.id());
        drop(b);
        assert_eq!(current_span_id(), 0);
        assert_eq!(trace.spans().len(), 2);
    }
}
