//! Arena memory accounting: byte footprints of the big analysis structures.
//!
//! The interning arenas are where scan memory goes; before sharding them
//! (ROADMAP item 1) we need to *see* them. [`MemoryFootprint`] is
//! implemented by [`StateSpace`](crate::StateSpace),
//! [`QuotientSpace`](crate::QuotientSpace), [`Graph`](crate::graph::Graph)
//! and the valence solvers' memo tables; each reports a
//! [`MemoryBreakdown`] of named components that
//! [`MemoryBreakdown::report`] publishes as `mem.*` gauges.
//!
//! Accounting is *shallow and capacity-based*: each component reports
//! `capacity × size_of::<Element>()` plus directly owned buffers one level
//! down, excluding allocator headers and deep heap payloads inside user
//! state types. The numbers are therefore documented lower bounds — but
//! deterministic ones: for a fixed binary and input they depend only on
//! the (deterministic) sequence of insertions, so they are safe on the
//! canonical record surface.

use super::Observer;

/// Byte counts of a structure, itemized by component.
///
/// Component names are full `mem.*` gauge names registered in
/// [`names::NAMES`](super::names::NAMES), so a breakdown can be published
/// verbatim with [`report`](MemoryBreakdown::report).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    components: Vec<(&'static str, u64)>,
}

impl MemoryBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        MemoryBreakdown::default()
    }

    /// Adds a component; `name` must be a registered `mem.*` gauge name.
    /// Repeated names accumulate.
    pub fn push(&mut self, name: &'static str, bytes: u64) {
        if let Some(slot) = self.components.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += bytes;
        } else {
            self.components.push((name, bytes));
        }
    }

    /// The components, in insertion order.
    #[must_use]
    pub fn components(&self) -> &[(&'static str, u64)] {
        &self.components
    }

    /// Total bytes across all components.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.components.iter().map(|&(_, b)| b).sum()
    }

    /// Publishes every component as a gauge on `obs`.
    pub fn report(&self, obs: &dyn Observer) {
        for &(name, bytes) in &self.components {
            obs.gauge(name, bytes);
        }
    }
}

/// Structures that can account for their own heap footprint.
pub trait MemoryFootprint {
    /// The structure's current byte footprint, itemized by component.
    fn memory_footprint(&self) -> MemoryBreakdown;

    /// Publishes the footprint as `mem.*` gauges on `obs`.
    fn report_memory(&self, obs: &dyn Observer) {
        self.memory_footprint().report(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MetricsRegistry;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = MemoryBreakdown::new();
        b.push("mem.space.states_bytes", 100);
        b.push("mem.space.index_bytes", 50);
        b.push("mem.space.states_bytes", 10);
        assert_eq!(b.total_bytes(), 160);
        assert_eq!(b.components().len(), 2);
        assert_eq!(b.components()[0], ("mem.space.states_bytes", 110));
    }

    #[test]
    fn report_publishes_gauges() {
        let mut b = MemoryBreakdown::new();
        b.push("mem.space.states_bytes", 4096);
        let reg = MetricsRegistry::new();
        b.report(&reg);
        assert_eq!(reg.snapshot().gauge_max("mem.space.states_bytes"), 4096);
    }
}
