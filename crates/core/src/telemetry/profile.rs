//! Self-profile summaries computed from recorded span trees.
//!
//! A [`TraceObserver`](super::trace::TraceObserver) ring answers "what
//! happened when"; [`profile`] folds it into "where did the time go": one
//! [`ProfileEntry`] per span name with call count, total (inclusive) time,
//! and *self* time — total minus the time spent in recorded child spans —
//! sorted by self time descending. Self time is what a flamegraph's widest
//! leaf shows, and the right metric for deciding which engine phase to
//! attack next.
//!
//! The summary's *shape* is canonical (fixed columns, deterministic
//! tie-breaking by name); its *values* are wall-clock and therefore
//! explicitly outside the byte-stability surface, like everything else
//! timing-derived (`DESIGN.md` §10).

use super::json::Json;
use super::trace::SpanRecord;
use crate::report::Table;
use std::collections::BTreeMap;

/// Aggregated timing for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The span name.
    pub name: &'static str,
    /// Number of completed spans.
    pub count: u64,
    /// Total inclusive nanoseconds across all spans of this name.
    pub total_ns: u64,
    /// Total minus time covered by recorded child spans (saturating).
    pub self_ns: u64,
}

/// Folds span records into per-name entries, sorted by self time
/// descending (ties broken by name, so equal inputs give equal output).
///
/// A span whose parent fell off the bounded ring is treated as a root; its
/// time still counts as the *parent's* child time only if the parent
/// record exists.
#[must_use]
pub fn profile(spans: &[SpanRecord]) -> Vec<ProfileEntry> {
    // Child time by parent span id.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_ns.entry(s.parent).or_insert(0) += s.duration_ns();
        }
    }
    let mut by_name: BTreeMap<&'static str, ProfileEntry> = BTreeMap::new();
    for s in spans {
        let e = by_name.entry(s.name).or_insert(ProfileEntry {
            name: s.name,
            ..ProfileEntry::default()
        });
        let dur = s.duration_ns();
        e.count += 1;
        e.total_ns += dur;
        e.self_ns += dur.saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
    }
    let mut entries: Vec<ProfileEntry> = by_name.into_values().collect();
    entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    entries
}

/// Renders profile entries as a report table (`span / count / total_ms /
/// self_ms / self_pct`), top-by-self-time first.
#[must_use]
pub fn profile_table(entries: &[ProfileEntry]) -> Table {
    let grand_self: u64 = entries.iter().map(|e| e.self_ns).sum();
    let mut t = Table::new(
        "Self-profile (top by self time)",
        &["span", "count", "total_ms", "self_ms", "self_pct"],
    );
    for e in entries {
        let pct = if grand_self == 0 {
            0.0
        } else {
            e.self_ns as f64 * 100.0 / grand_self as f64
        };
        t.row_owned(vec![
            e.name.to_string(),
            e.count.to_string(),
            format!("{:.3}", e.total_ns as f64 / 1e6),
            format!("{:.3}", e.self_ns as f64 / 1e6),
            format!("{pct:.1}"),
        ]);
    }
    t
}

/// The profile as a JSON array (one object per entry, same order as
/// [`profile`]).
#[must_use]
pub fn profile_json(entries: &[ProfileEntry]) -> Json {
    Json::Array(
        entries
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("span".into(), Json::from(e.name)),
                    ("count".into(), Json::from(e.count)),
                    ("total_ns".into(), Json::from(e.total_ns)),
                    ("self_ns".into(), Json::from(e.self_ns)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            thread: 0,
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_excludes_recorded_children() {
        // parent [0,100] with child [10,40]: parent self = 70.
        let spans = vec![
            rec(2, 1, "space.layer", 10, 40),
            rec(1, 0, "space.build", 0, 100),
        ];
        let p = profile(&spans);
        let build = p.iter().find(|e| e.name == "space.build").expect("build");
        assert_eq!(build.total_ns, 100);
        assert_eq!(build.self_ns, 70);
        let layer = p.iter().find(|e| e.name == "space.layer").expect("layer");
        assert_eq!(layer.self_ns, 30);
        // Sorted by self time descending: parent (70) before child (30).
        assert_eq!(p[0].name, "space.build");
    }

    #[test]
    fn self_time_saturates_on_overlapping_children() {
        // Children report more time than the parent holds (clock skew /
        // overlapping guards): self time clamps at zero, never wraps.
        let spans = vec![
            rec(2, 1, "space.layer", 0, 90),
            rec(3, 1, "space.layer", 0, 90),
            rec(1, 0, "space.build", 0, 100),
        ];
        let p = profile(&spans);
        let build = p.iter().find(|e| e.name == "space.build").expect("build");
        assert_eq!(build.self_ns, 0);
    }

    #[test]
    fn table_and_json_cover_every_entry() {
        let spans = vec![rec(1, 0, "sim.run", 0, 50)];
        let entries = profile(&spans);
        assert_eq!(profile_table(&entries).len(), 1);
        let rendered = profile_json(&entries).to_string();
        let parsed = Json::parse(&rendered).expect("valid json");
        assert_eq!(parsed[0]["span"].as_str(), Some("sim.run"));
        assert_eq!(parsed[0]["total_ns"].as_u64(), Some(50));
    }
}
