//! Properties of the hierarchical trace layer: parent attribution across
//! scoped worker threads, guard drop-order safety, and balance of the
//! Chrome trace-event export.

use proptest::prelude::*;

use layered_core::telemetry::json::Json;
use layered_core::telemetry::{Observer, Span, SpanRecord, TraceObserver};
use layered_core::testkit::CounterModel;
use layered_core::{LayeredModel, StateSpace, Value};

/// Expands a branchy model in parallel under a trace observer and returns
/// the recorded spans.
fn traced_parallel_expansion() -> Vec<SpanRecord> {
    let model = CounterModel::new(2, 8);
    let roots = [model.initial_state(&[Value::ZERO, Value::ZERO])];
    let tracer = TraceObserver::new();
    let mut space: StateSpace<CounterModel> = StateSpace::new();
    space.expand_layers_parallel(&model, &roots, 3, 4, &tracer);
    tracer.spans()
}

#[test]
fn parallel_worker_spans_attach_to_the_dispatching_layer_span() {
    let spans = traced_parallel_expansion();
    let build = spans
        .iter()
        .find(|s| s.name == "space.build")
        .expect("the expansion records its root span");
    let layers: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "space.layer").collect();
    assert_eq!(layers.len(), 3, "one layer span per expansion level");
    for layer in &layers {
        assert_eq!(layer.parent, build.id, "layer spans nest under the build");
        assert!(
            layer.attrs.iter().any(|&(k, _)| k == "depth"),
            "layer spans carry their depth attribute"
        );
    }
    let chunks: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.name == "space.prefetch_chunk")
        .collect();
    assert!(
        chunks.len() >= 2,
        "branch factor 8 across 4 threads must dispatch several chunks"
    );
    for chunk in &chunks {
        assert!(
            layers.iter().any(|l| l.id == chunk.parent),
            "worker span {chunk:?} must attach to a dispatching layer span"
        );
    }
    assert!(
        chunks.iter().any(|c| c.thread != build.thread),
        "scoped workers run on other threads, and the records say so"
    );
}

#[test]
fn out_of_order_guard_drops_keep_attribution_and_export_sane() {
    let tracer = TraceObserver::new();
    let a = Span::enter(&tracer, "space.build");
    let b = Span::enter(&tracer, "space.layer");
    let c = Span::enter(&tracer, "valence.classify");
    let (a_id, b_id) = (a.id(), b.id());
    // Drop the *outermost* guard first: the overlapping survivors must
    // keep their original parents and the export must stay balanced.
    drop(a);
    let d = Span::enter(&tracer, "layering.check_layer");
    drop(d);
    drop(c);
    drop(b);
    let spans = tracer.spans();
    let by_name = |n: &str| {
        spans
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("span {n} recorded"))
    };
    assert_eq!(by_name("space.layer").parent, a_id);
    assert_eq!(by_name("valence.classify").parent, b_id);
    // `a` was already closed when `d` opened; the innermost *open* span
    // was `c`.
    assert_eq!(
        by_name("layering.check_layer").parent,
        by_name("valence.classify").id
    );
    assert_balanced(&tracer.to_chrome_trace());
}

/// Walks a Chrome trace export and asserts the duration events are
/// balanced and properly nested per thread.
fn assert_balanced(trace: &Json) {
    let events = match trace.get("traceEvents") {
        Some(Json::Array(events)) => events,
        other => panic!("export must be {{\"traceEvents\": [...]}}, got {other:?}"),
    };
    let mut stacks: std::collections::BTreeMap<u64, Vec<(String, f64)>> =
        std::collections::BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        match ph {
            "B" => stacks.entry(tid).or_default().push((name.to_string(), ts)),
            "E" => {
                let (open_name, open_ts) = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E \"{name}\" on thread {tid} with nothing open"));
                assert_eq!(open_name, name, "E must close the innermost open B");
                assert!(open_ts <= ts, "span \"{name}\" ends before it starts");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }
}

/// A pool of registered names for synthetic records (the export does not
/// depend on names, but keeping them real keeps the fixture honest).
const NAME_POOL: [&str; 3] = ["space.layer", "layering.check_layer", "valence.classify"];

proptest! {
    /// Feeding *arbitrary* span records — any threads, any overlaps, any
    /// parents, zero-length intervals included — always yields a balanced,
    /// properly nested Chrome trace.
    #[test]
    fn chrome_export_is_always_balanced(
        raw in proptest::collection::vec((0u64..4, 0u64..500, 0u64..500), 0..48)
    ) {
        let tracer = TraceObserver::new();
        for (i, &(thread, a, b)) in raw.iter().enumerate() {
            tracer.span_record(&SpanRecord {
                id: i as u64 + 1,
                parent: i as u64, // arbitrary; export nests by containment
                name: NAME_POOL[i % NAME_POOL.len()],
                thread,
                start_ns: a.min(b),
                end_ns: a.max(b),
                attrs: vec![("ix", i as u64)],
            });
        }
        assert_balanced(&tracer.to_chrome_trace());
        // Every span produces exactly one B and one E.
        let trace = tracer.to_chrome_trace();
        if let Some(Json::Array(events)) = trace.get("traceEvents") {
            let b = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("B")).count();
            let e = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("E")).count();
            prop_assert_eq!(b, raw.len());
            prop_assert_eq!(e, raw.len());
        }
    }
}
