//! Satellite: snapshot save→load is the identity for both arena kinds,
//! re-saving is byte-identical, and the integrity seal rejects tampered,
//! truncated, and version-mismatched blobs — mirroring the certificate
//! store's round-trip suite (`crates/cert/tests/roundtrip.rs`).

use proptest::prelude::*;

use layered_core::telemetry::NOOP;
use layered_core::testkit::CounterModel;
use layered_core::{
    load_quotient, load_space, save_quotient, save_space, ArenaMeta, LayeredModel, QuotientSpace,
    SnapshotError, StateId, StateSpace,
};

/// Provenance stamped on every test snapshot.
fn meta(n: u64, depth: u64) -> ArenaMeta {
    ArenaMeta {
        model: "counter".to_string(),
        protocol: "toy".to_string(),
        n,
        horizon: depth + 1,
        depth,
        layering: "s1".to_string(),
    }
}

/// Builds an interned arena over `depth` layers of a counter model and
/// returns it with the interned levels (the source of valid [`StateId`]s).
fn built_state_space(
    n: usize,
    branch: u8,
    depth: usize,
) -> (CounterModel, StateSpace<CounterModel>, Vec<Vec<StateId>>) {
    let m = CounterModel::new(n, branch);
    let roots = m.initial_states();
    let mut space = StateSpace::for_model(&m);
    let levels = space.expand_layers(&m, &roots, depth, &NOOP);
    (m, space, levels)
}

/// The quotient twin of [`built_state_space`].
fn built_quotient_space(
    n: usize,
    branch: u8,
    depth: usize,
) -> (CounterModel, QuotientSpace<CounterModel>, Vec<Vec<StateId>>) {
    let m = CounterModel::new(n, branch);
    let roots = m.initial_states();
    let mut space = QuotientSpace::new(&m);
    let levels = space.expand_layers(&m, &roots, depth, &NOOP);
    (m, space, levels)
}

proptest! {
    /// Interned arenas round-trip for arbitrary sizes, branching factors
    /// and depths: same states under the same ids, same cached successor
    /// rows, same fingerprints — and re-saving the loaded arena
    /// reproduces the blob byte for byte.
    #[test]
    fn state_space_roundtrip_is_identity(
        n in 2usize..4,
        branch in 1u8..4,
        depth in 0usize..4,
    ) {
        let (model, space, levels) = built_state_space(n, branch, depth);
        let m = meta(n as u64, depth as u64);
        let (bytes, digest) = save_space(&space, &m, &NOOP);
        let (loaded, got_meta, got_digest) =
            load_space(&model, &bytes, &NOOP).expect("pristine blob loads");
        prop_assert_eq!(got_meta, m.clone());
        prop_assert_eq!(got_digest, digest);
        prop_assert_eq!(loaded.len(), space.len());
        prop_assert_eq!(loaded.edge_count(), space.edge_count());
        for id in levels.iter().flatten().copied() {
            prop_assert_eq!(loaded.resolve(id), space.resolve(id));
            prop_assert_eq!(loaded.get(&space.resolve(id)), Some(id));
            prop_assert_eq!(loaded.cached_successors(id), space.cached_successors(id));
            prop_assert_eq!(
                loaded.successor_fingerprint_of(id),
                space.successor_fingerprint_of(id)
            );
        }
        let (again, again_digest) = save_space(&loaded, &m, &NOOP);
        prop_assert_eq!(again, bytes, "re-save is not byte-identical");
        prop_assert_eq!(again_digest, got_digest);
    }

    /// Quotient arenas round-trip the same way, including orbit sizes and
    /// the per-edge recovery permutations.
    #[test]
    fn quotient_space_roundtrip_is_identity(
        n in 2usize..4,
        branch in 1u8..4,
        depth in 0usize..4,
    ) {
        let (model, space, levels) = built_quotient_space(n, branch, depth);
        let m = meta(n as u64, depth as u64);
        let (bytes, digest) = save_quotient(&space, &m, &NOOP);
        let (loaded, got_meta, got_digest) =
            load_quotient(&model, &bytes, &NOOP).expect("pristine blob loads");
        prop_assert_eq!(got_meta, m.clone());
        prop_assert_eq!(got_digest, digest);
        prop_assert_eq!(loaded.len(), space.len());
        prop_assert_eq!(loaded.edge_count(), space.edge_count());
        prop_assert_eq!(loaded.covered_states(), space.covered_states());
        for id in levels.iter().flatten().copied() {
            prop_assert_eq!(loaded.resolve(id), space.resolve(id));
            prop_assert_eq!(loaded.orbit_size_of(id), space.orbit_size_of(id));
            prop_assert_eq!(
                loaded.cached_successors_with_perms(id),
                space.cached_successors_with_perms(id)
            );
            prop_assert_eq!(
                loaded.successor_fingerprint_of(id),
                space.successor_fingerprint_of(id)
            );
        }
        let (again, again_digest) = save_quotient(&loaded, &m, &NOOP);
        prop_assert_eq!(again, bytes, "re-save is not byte-identical");
        prop_assert_eq!(again_digest, got_digest);
    }
}

/// A single flipped bit anywhere in the blob — header, seal, index, CSR,
/// fingerprints — is rejected; no tampered blob ever loads.
#[test]
fn corrupted_bytes_are_rejected() {
    let (model, space, _) = built_state_space(3, 3, 3);
    let (pristine, _) = save_space(&space, &meta(3, 3), &NOOP);
    // Flip one bit at a spread of positions (every 7th byte keeps the test
    // fast while still covering header, index, CSR, and fingerprint
    // regions).
    for pos in (0..pristine.len()).step_by(7) {
        let mut tampered = pristine.clone();
        tampered[pos] ^= 0x01;
        assert!(
            load_space(&model, &tampered, &NOOP).is_err(),
            "tampering at byte {pos} not caught"
        );
    }
    // The pristine bytes still load.
    load_space(&model, &pristine, &NOOP).expect("pristine blob loads");
}

/// The quotient loader rejects the same bit flips, including in the
/// orbit-size and permutation sections the interned format lacks.
#[test]
fn corrupted_quotient_bytes_are_rejected() {
    let (model, space, _) = built_quotient_space(3, 3, 2);
    let (pristine, _) = save_quotient(&space, &meta(3, 2), &NOOP);
    for pos in (0..pristine.len()).step_by(7) {
        let mut tampered = pristine.clone();
        tampered[pos] ^= 0x01;
        assert!(
            load_quotient(&model, &tampered, &NOOP).is_err(),
            "tampering at byte {pos} not caught"
        );
    }
    load_quotient(&model, &pristine, &NOOP).expect("pristine blob loads");
}

/// Truncation (a partial write) is caught at every prefix length, and so
/// are trailing garbage bytes.
#[test]
fn truncated_and_padded_blobs_are_rejected() {
    let (model, space, _) = built_state_space(3, 2, 2);
    let (pristine, _) = save_space(&space, &meta(3, 2), &NOOP);
    for len in [
        0,
        1,
        pristine.len() / 4,
        pristine.len() / 2,
        pristine.len() - 1,
    ] {
        assert!(
            load_space(&model, &pristine[..len], &NOOP).is_err(),
            "truncation to {len} bytes not caught"
        );
    }
    let mut padded = pristine.clone();
    padded.push(0);
    assert!(
        load_space(&model, &padded, &NOOP).is_err(),
        "trailing byte not caught"
    );
}

/// A future format version is reported as [`SnapshotError::UnsupportedVersion`]
/// — deterministically, *before* the integrity hash is checked, so old
/// readers give actionable errors on new blobs instead of "corrupt".
#[test]
fn version_mismatch_is_rejected_before_hashing() {
    let (model, space, _) = built_state_space(3, 2, 2);
    let (pristine, _) = save_space(&space, &meta(3, 2), &NOOP);
    let needle = b"\"version\":2";
    let pos = pristine
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("canonical header carries the version");
    let mut tampered = pristine;
    tampered[pos + needle.len() - 1] = b'3';
    match load_space(&model, &tampered, &NOOP) {
        Err(SnapshotError::UnsupportedVersion(3)) => {}
        Err(other) => panic!("expected UnsupportedVersion(3), got {other:?}"),
        Ok(_) => panic!("version-tampered blob loaded"),
    }
}

/// Loading a snapshot as the wrong arena kind fails with
/// [`SnapshotError::WrongKind`] in both directions.
#[test]
fn wrong_kind_is_rejected_both_ways() {
    let (model, qspace, _) = built_quotient_space(3, 2, 2);
    let (qbytes, _) = save_quotient(&qspace, &meta(3, 2), &NOOP);
    match load_space(&model, &qbytes, &NOOP) {
        Err(SnapshotError::WrongKind { expected, found }) => {
            assert_eq!(expected, "state");
            assert_eq!(found, "quotient");
        }
        Ok(_) => panic!("quotient snapshot loaded as state space"),
        Err(other) => panic!("expected WrongKind, got {other:?}"),
    }

    let (_, space, _) = built_state_space(3, 2, 2);
    let (bytes, _) = save_space(&space, &meta(3, 2), &NOOP);
    match load_quotient(&model, &bytes, &NOOP) {
        Err(SnapshotError::WrongKind { expected, found }) => {
            assert_eq!(expected, "quotient");
            assert_eq!(found, "state");
        }
        Ok(_) => panic!("state snapshot loaded as quotient space"),
        Err(other) => panic!("expected WrongKind, got {other:?}"),
    }
}

/// An empty arena (no states interned at all) still round-trips.
#[test]
fn empty_space_roundtrips() {
    let model = CounterModel::new(3, 2);
    let space: StateSpace<CounterModel> = StateSpace::new();
    let m = meta(3, 0);
    let (bytes, _) = save_space(&space, &m, &NOOP);
    let (loaded, got_meta, _) = load_space(&model, &bytes, &NOOP).expect("empty blob loads");
    assert_eq!(got_meta, m);
    assert_eq!(loaded.len(), 0);
    assert_eq!(loaded.edge_count(), 0);
    let (again, _) = save_space(&loaded, &m, &NOOP);
    assert_eq!(again, bytes);
}
