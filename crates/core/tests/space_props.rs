//! Property tests for the hash-consing state arena: interning round-trips,
//! id density, and sequential/parallel expansion equivalence under random
//! model shapes and interning orders.

use proptest::prelude::*;

use layered_core::testkit::{reachable_space, CounterModel};
use layered_core::{LayeredModel, NoopObserver, StateSpace};

/// Every distinct state reachable in 3 layers of a 3-way branching model —
/// the pool random interning orders draw from.
fn pool() -> Vec<<CounterModel as LayeredModel>::State> {
    let m = CounterModel::new(3, 3);
    let (space, levels) = reachable_space(&m, 3);
    levels
        .into_iter()
        .flatten()
        .map(|id| space.resolve(id))
        .collect()
}

fn arb_picks() -> impl Strategy<Value = Vec<usize>> {
    let len = pool().len();
    proptest::collection::vec(0..len, 1..64)
}

proptest! {
    /// `resolve(intern(s)) == s`, double-interning returns the same id, and
    /// ids stay dense in first-seen order — for arbitrary interning orders.
    #[test]
    fn intern_round_trips_under_random_orders(picks in arb_picks()) {
        let states = pool();
        let mut space: StateSpace<CounterModel> = StateSpace::new();
        let mut first_id = std::collections::HashMap::new();
        for &k in &picks {
            let s = &states[k];
            let id = space.intern(s);
            prop_assert_eq!(&space.resolve(id), s);
            let prior = *first_id.entry(k).or_insert(id);
            prop_assert_eq!(prior, id, "double-intern must return the first id");
            prop_assert_eq!(space.get(s), Some(id));
        }
        // One arena slot per distinct state presented.
        prop_assert_eq!(space.len(), first_id.len());
        // Ids are dense and assigned in first-seen order.
        let mut seen = std::collections::HashSet::new();
        let mut next = 0usize;
        for &k in &picks {
            if seen.insert(k) {
                prop_assert_eq!(first_id[&k].index(), next);
                next += 1;
            }
        }
    }

    /// Parallel expansion is bit-identical to sequential for arbitrary
    /// branching factors, horizons, and thread counts.
    #[test]
    fn parallel_expansion_matches_sequential(
        branch in 1u8..4,
        horizon in 0usize..4,
        threads in 1usize..9,
    ) {
        let m = CounterModel::new(3, branch);
        let roots = m.initial_states();
        let mut seq: StateSpace<CounterModel> = StateSpace::new();
        let a = seq.expand_layers(&m, &roots, horizon, &NoopObserver);
        let mut par: StateSpace<CounterModel> = StateSpace::new();
        let b = par.expand_layers_parallel(&m, &roots, horizon, threads, &NoopObserver);
        prop_assert_eq!(a, b);
        prop_assert_eq!(seq.len(), par.len());
        prop_assert_eq!(seq.edge_count(), par.edge_count());
    }
}
