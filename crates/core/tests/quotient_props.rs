//! Property tests for the symmetry machinery: the permutation group laws,
//! the canonicalization contract, and full-vs-quotient expansion parity on
//! the testkit's equivariant `CounterModel`.

use proptest::prelude::*;

use layered_core::testkit::{CounterModel, CounterState};
use layered_core::{orbit_size, ExecutionTrace};
use layered_core::{LayeredModel, PidPerm, QuotientSpace, StateSpace, Symmetric, Value};

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

/// A permutation of degree `n`, drawn by index into the full enumeration.
fn perm_of(n: usize, seed: usize) -> PidPerm {
    let all = PidPerm::all(n);
    all[seed % all.len()].clone()
}

proptest! {
    /// Group laws: `π ∘ π⁻¹ = id` and `(π ∘ τ)·v = π·(τ·v)`.
    #[test]
    fn perm_group_laws(n in 2usize..5, p in 0usize..120, q in 0usize..120) {
        let pi = perm_of(n, p);
        let tau = perm_of(n, q);
        prop_assert!(pi.compose(&pi.inverse()).is_identity());
        prop_assert!(pi.inverse().compose(&pi).is_identity());
        let v: Vec<usize> = (0..n).collect();
        prop_assert_eq!(
            pi.compose(&tau).permute_vec(&v),
            pi.permute_vec(&tau.permute_vec(&v))
        );
    }

    /// The canonicalization contract: the returned permutation witnesses
    /// the representative, the representative is a fixed point, and every
    /// orbit member canonicalizes to the same representative.
    #[test]
    fn canonicalize_contract(inputs in arb_inputs(3), p in 0usize..6) {
        let m = CounterModel::new(3, 2);
        let x = m.initial_state(&inputs);
        let (rep, pi) = m.canonicalize(&x);
        prop_assert_eq!(&m.permute_state(&x, &pi), &rep);
        prop_assert_eq!(&m.canonicalize(&rep).0, &rep);
        let y = m.permute_state(&x, &perm_of(3, p));
        prop_assert_eq!(&m.canonicalize(&y).0, &rep);
        prop_assert_eq!(orbit_size(&m, &x), orbit_size(&m, &rep));
    }

    /// Expansion parity: per level, the quotient's orbits cover exactly the
    /// full space's states (orbit sizes sum to the full level count), and
    /// every full-space state canonicalizes to an interned representative.
    #[test]
    fn quotient_expansion_covers_full_space(n in 2usize..4, branch in 1u8..3) {
        let m = CounterModel::new(n, branch);
        let roots = m.initial_states();

        let mut full = StateSpace::new();
        let full_levels = full.expand_layers(&m, &roots, 2, &layered_core::NoopObserver);

        let mut quot = QuotientSpace::new(&m);
        let quot_levels = quot.expand_layers(&m, &roots, 2, &layered_core::NoopObserver);

        prop_assert_eq!(full_levels.len(), quot_levels.len());
        for (fl, ql) in full_levels.iter().zip(&quot_levels) {
            let covered: u64 = ql.iter().map(|&id| quot.orbit_size_of(id)).sum();
            prop_assert_eq!(covered, fl.len() as u64);
            for &id in fl {
                let x = full.resolve(id);
                let (rep, _) = m.canonicalize(&x);
                prop_assert!(quot.get(&m, &rep).is_some(), "missing orbit of {x:?}");
            }
        }
    }

    /// De-quotiented paths are genuine executions: walking quotient edges
    /// and materializing through the stored permutations yields a chain
    /// that `ExecutionTrace::validate` accepts.
    #[test]
    fn dequotiented_paths_validate(n in 2usize..4, steps in 1usize..3) {
        let m = CounterModel::new(n, 2);
        let mut quot = QuotientSpace::new(&m);
        let roots = m.initial_states();
        let levels = quot.expand_layers(&m, &roots, steps, &layered_core::NoopObserver);

        // Greedy path: first root, then the last cached successor each step.
        let mut path = vec![levels[0][0]];
        for _ in 0..steps {
            let succs = quot
                .cached_successors(*path.last().unwrap())
                .expect("expanded");
            path.push(*succs.last().expect("CounterModel always branches"));
        }
        let states: Vec<CounterState> =
            quot.dequotient_path(&m, &path).expect("edges are cached");
        prop_assert_eq!(states.len(), path.len());
        let trace = ExecutionTrace::new(states);
        prop_assert!(trace.validate(&m).is_ok());
    }
}
