//! Snapshot round-trip for the t-resilient crash model: `CrashState`
//! (with its failure record) survives the arena codec, and re-saving the
//! reloaded arena is byte-identical.

use layered_core::{load_space, save_space, ArenaMeta, LayeredModel, NoopObserver, StateSpace};
use layered_protocols::FloodMin;
use layered_sync_crash::{CrashModel, MODEL_KEY};

const NOOP: NoopObserver = NoopObserver;

fn meta() -> ArenaMeta {
    ArenaMeta {
        model: MODEL_KEY.to_string(),
        protocol: "floodmin".to_string(),
        n: 3,
        horizon: 3,
        depth: 2,
        layering: "s1".to_string(),
    }
}

#[test]
fn interned_arena_roundtrips_at_n3() {
    let m = CrashModel::new(3, 1, FloodMin::new(2));
    let roots = m.initial_states();
    let mut space: StateSpace<CrashModel<FloodMin>> = StateSpace::new();
    let levels = space.expand_layers(&m, &roots, 2, &NOOP);
    let (bytes, digest) = save_space(&space, &meta(), &NOOP);
    let (loaded, got_meta, got_digest) =
        load_space(&m, &bytes, &NOOP).expect("pristine blob loads");
    assert_eq!(got_meta, meta());
    assert_eq!(got_digest, digest);
    assert_eq!(loaded.len(), space.len());
    assert_eq!(loaded.edge_count(), space.edge_count());
    for id in levels.iter().flatten().copied() {
        assert_eq!(loaded.resolve(id), space.resolve(id));
        assert_eq!(loaded.cached_successors(id), space.cached_successors(id));
        assert_eq!(
            loaded.successor_fingerprint_of(id),
            space.successor_fingerprint_of(id)
        );
    }
    let (again, _) = save_space(&loaded, &meta(), &NOOP);
    assert_eq!(again, bytes, "re-save is not byte-identical");
}

#[test]
fn tampered_blobs_are_rejected() {
    let m = CrashModel::new(3, 1, FloodMin::new(2));
    let roots = m.initial_states();
    let mut space: StateSpace<CrashModel<FloodMin>> = StateSpace::new();
    space.expand_layers(&m, &roots, 1, &NOOP);
    let (pristine, _) = save_space(&space, &meta(), &NOOP);
    for pos in (0..pristine.len()).step_by(13) {
        let mut tampered = pristine.clone();
        tampered[pos] ^= 0x01;
        assert!(
            load_space(&m, &tampered, &NOOP).is_err(),
            "tampering at byte {pos} not caught"
        );
    }
}
