//! Property tests for the t-resilient synchronous model: budget and
//! failure-record invariants along random `S^t`-runs.

use proptest::prelude::*;

use layered_core::{orbit_size, LayeredModel, PidPerm, Symmetric, Value};
use layered_protocols::{FloodMin, SyncProtocol};
use layered_sync_crash::{CrashLayering, CrashModel, CrashState};

type State = CrashState<<FloodMin as SyncProtocol>::LocalState>;

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

/// Walk by indexing into the layer (which is always non-empty).
fn walk(m: &CrashModel<FloodMin>, inputs: &[Value], choices: &[usize]) -> Vec<State> {
    let mut states = vec![m.initial_state(inputs)];
    for &c in choices {
        let layer = m.successors(states.last().unwrap());
        let next = layer[c % layer.len()].clone();
        states.push(next);
    }
    states
}

proptest! {
    /// Failure records only grow, never exceed t, and failed processes
    /// stay silent (their values stop spreading).
    #[test]
    fn budget_and_monotonicity(
        inputs in arb_inputs(4),
        choices in proptest::collection::vec(0usize..64, 1..4),
        t in 1usize..=2,
    ) {
        let m = CrashModel::new(4, t, FloodMin::new(3));
        let states = walk(&m, &inputs, &choices);
        for w in states.windows(2) {
            prop_assert!(w[0].failed.iter().all(|p| w[1].failed.contains(p)));
            prop_assert!(w[1].failure_count() <= t);
            prop_assert!(w[1].failure_count() <= w[0].failure_count() + 1);
        }
    }

    /// The packed codec round-trips every state of a random run — failure
    /// record included — and the word shuffle commutes with renaming.
    #[test]
    fn packed_codec_round_trips_and_commutes(
        inputs in arb_inputs(4),
        choices in proptest::collection::vec(0usize..64, 0..3),
        perm_ix in 0usize..24,
    ) {
        let m = CrashModel::new(4, 2, FloodMin::new(3));
        let packer = m.state_packer().expect("FloodMin crash states pack");
        let perm = &PidPerm::all(4)[perm_ix];
        for x in walk(&m, &inputs, &choices) {
            let w = packer.pack(&x).expect("reachable states pack");
            prop_assert_eq!(packer.unpack(w), x.clone());
            let shuffled = packer.permute_word(w, perm).expect("shuffle present");
            prop_assert_eq!(
                packer.unpack(shuffled),
                m.permute_state(&x, perm),
                "word shuffle must relocate lanes and the failure mask"
            );
        }
    }

    /// Packed canonicalization: valid witness, brute-force orbit size, and
    /// an orbit-invariant representative.
    #[test]
    fn packed_canonicalization_is_orbit_consistent(
        inputs in arb_inputs(3),
        choices in proptest::collection::vec(0usize..64, 0..2),
        perm_ix in 0usize..6,
    ) {
        let m = CrashModel::new(3, 1, FloodMin::new(2)).with_layering(CrashLayering::Full);
        let x = walk(&m, &inputs, &choices).pop().unwrap();
        let (rep, pi, orbit) = m.canonicalize_with_orbit(&x);
        prop_assert_eq!(&m.permute_state(&x, &pi), &rep);
        prop_assert_eq!(orbit, orbit_size(&m, &x) as u64);
        let y = m.permute_state(&x, &PidPerm::all(3)[perm_ix]);
        let (rep_y, pi_y) = m.canonicalize(&y);
        prop_assert_eq!(&rep_y, &rep);
        prop_assert_eq!(&m.permute_state(&y, &pi_y), &rep);
    }

    /// Once the budget is exhausted, the layer is the singleton
    /// failure-free round.
    #[test]
    fn exhausted_budget_freezes_failures(
        inputs in arb_inputs(3),
        choices in proptest::collection::vec(0usize..64, 1..4),
    ) {
        let m = CrashModel::new(3, 1, FloodMin::new(4));
        let states = walk(&m, &inputs, &choices);
        for x in &states {
            if x.failure_count() == 1 {
                prop_assert_eq!(m.successors(x).len(), 1);
            }
        }
    }

    /// Decisions are write-once and valid along arbitrary runs.
    #[test]
    fn decisions_write_once_and_valid(
        inputs in arb_inputs(3),
        choices in proptest::collection::vec(0usize..64, 1..4),
    ) {
        let m = CrashModel::new(3, 1, FloodMin::new(2));
        let states = walk(&m, &inputs, &choices);
        for w in states.windows(2) {
            for i in 0..3 {
                if let Some(v) = w[0].decided[i] {
                    prop_assert_eq!(w[1].decided[i], Some(v));
                }
                if let Some(v) = w[1].decided[i] {
                    prop_assert!(inputs.contains(&v), "decided value must be an input");
                }
            }
        }
    }

    /// Non-failed processes that decide agree with each other in every
    /// reachable state of the verified FloodMin(t+1) — the agreement half
    /// of Corollary 6.3, as a property over random runs.
    #[test]
    fn verified_protocol_agreement_along_runs(
        inputs in arb_inputs(3),
        choices in proptest::collection::vec(0usize..64, 1..3),
    ) {
        let m = CrashModel::new(3, 1, FloodMin::new(2));
        let states = walk(&m, &inputs, &choices);
        for x in &states {
            let decided: Vec<Value> = (0..3)
                .filter(|&i| !x.is_failed(layered_core::Pid::new(i)))
                .filter_map(|i| x.decided[i])
                .collect();
            prop_assert!(decided.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
