//! Symmetry-reduction soundness for the t-resilient crash model: the
//! subset-failure `Full` layering is equivariant (failure records
//! included), valence flags are orbit-invariant, quotient and full scans
//! agree, and de-quotiented witnesses re-verify.

use std::collections::HashSet;

use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_quotient,
    ImpossibilityWitness, LayeredModel, Pid, PidPerm, QuotientSolver, Symmetric, ValenceSolver,
    Value,
};
use layered_protocols::FloodMin;
use layered_sync_crash::{CrashLayering, CrashModel};

fn sym_model(n: usize, t: usize, rounds: u16) -> CrashModel<FloodMin> {
    CrashModel::new(n, t, FloodMin::new(rounds)).with_layering(CrashLayering::Full)
}

#[test]
fn only_the_full_layering_is_symmetric() {
    assert!(!CrashModel::new(3, 1, FloodMin::new(2)).symmetric_layering());
    assert!(sym_model(3, 1, 2).symmetric_layering());
}

#[test]
fn full_layering_is_equivariant_with_failure_records() {
    let m = sym_model(3, 1, 2);
    // Check from the initial states and from a state with a recorded failure.
    let mut frontier = m.initial_states();
    let failed = m.apply(&frontier[1], Some((Pid::new(2), 3)));
    assert!(!failed.failed.is_empty());
    frontier.push(failed);
    for x in &frontier {
        let layer: Vec<_> = m.successors(x);
        for pi in PidPerm::all(3) {
            let renamed_layer: HashSet<_> =
                m.successors(&m.permute_state(x, &pi)).into_iter().collect();
            let layer_renamed: HashSet<_> = layer.iter().map(|y| m.permute_state(y, &pi)).collect();
            assert_eq!(renamed_layer, layer_renamed, "not equivariant under {pi:?}");
        }
    }
}

#[test]
fn permutation_relabels_the_failure_record() {
    let m = sym_model(3, 1, 2);
    let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
    let y = m.apply(&x, Some((Pid::new(0), 3)));
    assert!(y.is_failed(Pid::new(0)));
    // The cyclic renaming 0→1→2→0.
    let pi = PidPerm::from_map(vec![1, 2, 0]);
    let z = m.permute_state(&y, &pi);
    assert!(z.is_failed(Pid::new(1)) && !z.is_failed(Pid::new(0)));
}

#[test]
fn valence_flags_are_orbit_invariant() {
    let m = sym_model(3, 1, 1);
    let mut solver = ValenceSolver::new(&m, 1);
    for x in m.initial_states() {
        let flags = solver.valences(&x);
        let (rep, _) = m.canonicalize(&x);
        assert_eq!(flags, solver.valences(&rep));
        for pi in PidPerm::all(3) {
            assert_eq!(flags, solver.valences(&m.permute_state(&x, &pi)));
        }
    }
}

#[test]
fn quotient_and_full_scans_agree_at_n3() {
    let m = sym_model(3, 1, 2);
    let mut full_solver = ValenceSolver::new(&m, 2);
    let full = scan_layer_valence_connectivity(&mut full_solver, 1, true);
    let mut quot_solver = QuotientSolver::new(&m, 2);
    let quot = scan_layer_valence_connectivity_quotient(&mut quot_solver, 1, true);
    assert_eq!(full.violation.is_none(), quot.violation.is_none());
    assert!(quot.states_seen <= full.states_seen);
}

#[test]
fn dequotiented_witness_verifies() {
    // FloodMin at its t-round deadline cannot solve consensus (Corollary
    // 6.3): a bivalent initial state exists and the quotient engine packages
    // it into a witness that re-verifies against the full model.
    let m = sym_model(3, 1, 1);
    let w = ImpossibilityWitness::build_quotient(&m, 1, 0)
        .expect("a bivalent initial state exists below the Dolev-Strong bound");
    assert!(w.verify(&m).is_ok(), "de-quotiented witness must re-verify");
}
