//! The t-resilient synchronous message-passing model and the layering
//! `S^t`, per Section 6 of Moses & Rajsbaum, PODC 1998.
//!
//! The headline result reproduced here is the Dolev–Strong lower bound
//! (Corollary 6.3): every t-resilient consensus protocol has a run deciding
//! no earlier than round `t + 1` — proved in the paper by the same
//! bivalence machinery as the asynchronous impossibility results, and
//! executed here by:
//!
//! * [`lemma_6_1_chain`] — constructing a bivalent `S^t`-execution of
//!   `t − f − 1` layers from any bivalent state with `f` failures;
//! * [`lemma_6_2_witness`] — finding, after any bivalent state, a successor
//!   with an undecided non-failed process (two more rounds needed);
//! * [`check_lemma_6_4`] — univalence after a failure-free round in fast
//!   protocols;
//! * the [consensus checker](layered_core::check_consensus), which passes
//!   FloodMin at deadline `t + 1` (the bound is tight) and exhibits the
//!   violation of every `t`-round candidate.
//!
//! # Example
//!
//! ```
//! use layered_core::check_consensus;
//! use layered_protocols::FloodMin;
//! use layered_sync_crash::CrashModel;
//!
//! // n = 3, t = 1: two rounds suffice...
//! let m = CrashModel::new(3, 1, FloodMin::new(2));
//! assert!(check_consensus(&m, 2, 1).passed());
//! // ...and one round cannot (Corollary 6.3).
//! let m = CrashModel::new(3, 1, FloodMin::new(1));
//! assert!(!check_consensus(&m, 1, 1).passed());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lemmas;
mod model;
mod sim;
mod state;

pub use lemmas::{check_display_below_budget, check_lemma_6_4, lemma_6_1_chain, lemma_6_2_witness};
pub use model::{CrashLayering, CrashModel};
pub use sim::CrashMove;
pub use state::CrashState;

/// Stable key identifying this model in certificate stores and query URLs.
pub const MODEL_KEY: &str = "sync-crash";

/// Claims the certificate registry can compute and serve for this model:
/// the Lemma 6.1 bivalent `S^t`-execution (consensus is solvable here, so
/// no impossibility witness exists — the lower-bound chain is the
/// artifact).
pub const CLAIM_KEYS: &[&str] = &["lemma_6_1"];
