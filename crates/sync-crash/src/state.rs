//! Global states of the t-resilient synchronous model.

use std::collections::BTreeSet;

use layered_core::{Pid, SnapshotError, SnapshotReader, SnapshotState, Value};

/// A global state of the t-resilient synchronous message-passing model of
/// Section 6.
///
/// The environment's local state records which processes have failed
/// (paper assumption (iii)); a recorded process is silenced forever in all
/// subsequent rounds (assumption (ii)). A process is recorded as failed in
/// the first round in which one of its messages is actually lost.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CrashState<L> {
    /// Completed rounds.
    pub round: u16,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// Per-process protocol local states.
    pub locals: Vec<L>,
    /// Per-process write-once decision variables `d_i`.
    pub decided: Vec<Option<Value>>,
    /// Processes recorded as failed (environment state).
    pub failed: BTreeSet<Pid>,
}

impl<L> CrashState<L> {
    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Whether the state is degenerate (no processes). Never true for
    /// model-produced states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// The decision of process `i`, if made.
    #[must_use]
    pub fn decision(&self, i: Pid) -> Option<Value> {
        self.decided[i.index()]
    }

    /// Number of recorded failures.
    #[must_use]
    pub fn failure_count(&self) -> usize {
        self.failed.len()
    }

    /// Whether process `i` is recorded as failed.
    #[must_use]
    pub fn is_failed(&self, i: Pid) -> bool {
        self.failed.contains(&i)
    }
}

impl<L: SnapshotState> SnapshotState for CrashState<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.inputs.encode(out);
        self.locals.encode(out);
        self.decided.encode(out);
        self.failed.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CrashState {
            round: u16::decode(r)?,
            inputs: Vec::decode(r)?,
            locals: Vec::decode(r)?,
            decided: Vec::decode(r)?,
            failed: BTreeSet::decode(r)?,
        })
    }
}
