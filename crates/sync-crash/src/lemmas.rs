//! Executable forms of the Section 6 lemmas.
//!
//! These functions *construct the objects the lemmas assert to exist* (or
//! search exhaustively for counterexamples), so every claim of Section 6 is
//! reproduced as a checkable artifact rather than re-proved on paper.

use layered_core::{
    extend_bivalent_run, undecided_non_failed, BivalentRunOutcome, LayeredModel, NoopObserver, Pid,
    StateId, StateSpace, ValenceSolver,
};
use layered_protocols::SyncProtocol;

use crate::model::CrashModel;
use crate::state::CrashState;

/// Lemma 6.1, executed: from a bivalent state `x0` in which `f` processes
/// are failed, construct a bivalent `S^t`-execution
/// `x⁰, x¹, …, x^{t−f−1}`.
///
/// Returns the engine outcome; `reached_target()` means the execution of
/// the promised length was built, and the chain's last state has at most
/// `t − 1` failed processes, as the lemma states.
///
/// # Panics
///
/// Panics if `x0` is not bivalent under the solver's horizon.
pub fn lemma_6_1_chain<P: SyncProtocol>(
    model: &CrashModel<P>,
    solver: &mut ValenceSolver<'_, CrashModel<P>>,
    x0: CrashState<P::LocalState>,
) -> BivalentRunOutcome<CrashState<P::LocalState>> {
    let f = x0.failure_count();
    let t = model.resilience();
    let steps = t.saturating_sub(f + 1);
    extend_bivalent_run(solver, x0, steps)
}

/// Lemma 6.2, executed: given a bivalent state `x̂`, find a successor
/// `y ∈ S^t(x̂)` in which at least one non-failed process has not decided.
///
/// The lemma guarantees existence for any protocol satisfying agreement on
/// these runs; `None` therefore witnesses an agreement violation nearby
/// (which [`layered_core::check_consensus`] will localize).
pub fn lemma_6_2_witness<P: SyncProtocol>(
    model: &CrashModel<P>,
    x: &CrashState<P::LocalState>,
) -> Option<(CrashState<P::LocalState>, Vec<Pid>)> {
    model.layer(x).into_iter().find_map(|y| {
        let undecided = undecided_non_failed(model, &y);
        (!undecided.is_empty()).then_some((y, undecided))
    })
}

/// Lemma 6.4, checked exhaustively: for a *fast* protocol (always decides
/// within `t + 1` rounds), every state reached by an execution with at most
/// `k` failures in its first `k` rounds followed by a failure-free round is
/// univalent.
///
/// Scans all `S^t`-executions with `depth ≤ limit`; returns the first
/// violating state (a bivalent `x^{k+1}` after a failure-free round with
/// `≤ k` failures by round `k`), or `None` if the lemma holds.
pub fn check_lemma_6_4<P: SyncProtocol>(
    model: &CrashModel<P>,
    solver: &mut ValenceSolver<'_, CrashModel<P>>,
    limit: usize,
) -> Option<CrashState<P::LocalState>> {
    // The sweep runs entirely on arena ids: states with many failures are
    // re-reached along many failure orders, and interning collapses them
    // once instead of re-hashing full round states at every level. (Crash
    // states embed their round, so a state occurs at exactly one depth and
    // the global dedup below matches the per-level dedup it replaces.)
    let mut seen = std::collections::HashSet::new();
    let mut frontier: Vec<StateId> = model
        .initial_states()
        .iter()
        .map(|x| solver.intern(x))
        .filter(|id| seen.insert(*id))
        .collect();
    for k in 0..limit {
        let mut next = Vec::new();
        for &id in &frontier {
            // Only executions with at most k failures by round k qualify.
            let qualifies = solver.space().resolve(id).failure_count() <= k;
            if qualifies {
                let y = model.apply(&solver.space().resolve(id), None); // failure-free round k+1
                let yid = solver.intern(&y);
                if solver.is_bivalent_id(yid) {
                    return Some(solver.space().resolve(yid));
                }
            }
            next.extend(solver.successor_ids(id));
        }
        frontier = next.into_iter().filter(|id| seen.insert(*id)).collect();
        if frontier.is_empty() {
            break;
        }
    }
    None
}

/// The arbitrary-crash display property, checked in its inductive form on
/// the region where Section 6 claims it: pairs of reachable states that
/// agree modulo some `j` and have **fewer than `t` failures**. (With the
/// budget exhausted, the display property genuinely fails — the environment
/// can no longer crash the distinguishing process — which is exactly why
/// Lemma 6.1 stops at `t − 1` failures.)
///
/// Returns the first violating pair.
#[allow(clippy::type_complexity)]
pub fn check_display_below_budget<P: SyncProtocol>(
    model: &CrashModel<P>,
    depth_limit: usize,
) -> Option<(CrashState<P::LocalState>, CrashState<P::LocalState>, Pid)> {
    let n = model.num_processes();
    let t = model.resilience();
    let obs = NoopObserver;
    let mut space: StateSpace<CrashModel<P>> = StateSpace::new();
    let mut seen = std::collections::HashSet::new();
    let mut frontier: Vec<StateId> = model
        .initial_states()
        .iter()
        .map(|x| space.intern(x))
        .filter(|id| seen.insert(*id))
        .collect();
    for depth in 0..=depth_limit {
        for (ai, &a) in frontier.iter().enumerate() {
            let x = space.resolve(a);
            if x.failure_count() >= t {
                continue;
            }
            for &b in &frontier[ai..] {
                let y = space.resolve(b);
                if y.failure_count() >= t {
                    continue;
                }
                for j in Pid::all(n) {
                    if !model.agree_modulo(&x, &y, j) {
                        continue;
                    }
                    let cx = model.crash_step(&x, j);
                    let cy = model.crash_step(&y, j);
                    if !model.agree_modulo(&cx, &cy, j) {
                        return Some((x.clone(), y.clone(), j));
                    }
                }
            }
        }
        if depth == depth_limit {
            break;
        }
        let mut next = Vec::new();
        for &id in &frontier {
            for s in space.successor_ids(model, id, &obs) {
                if seen.insert(s) {
                    next.push(s);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use layered_core::{check_lemma_3_1, LayeredModel, Valence, Value};
    use layered_protocols::FloodMin;

    use super::*;

    #[test]
    fn lemma_6_1_builds_chain_for_t_2() {
        // n = 4, t = 2: from a bivalent initial state (f = 0) the chain must
        // extend t - f - 1 = 1 layer, ending with <= t - 1 failures.
        let m = CrashModel::new(4, 2, FloodMin::new(3));
        let mut solver = ValenceSolver::new(&m, 3);
        let x0 = solver
            .bivalent_initial_state()
            .expect("Lemma 3.6: a bivalent initial state exists");
        let out = lemma_6_1_chain(&m, &mut solver, x0);
        assert!(out.reached_target(), "stuck: {:?}", out.stuck);
        let chain = out.chain.expect("chain");
        assert_eq!(chain.steps(), 1);
        assert!(chain.last().failure_count() <= 1);
    }

    #[test]
    fn lemma_6_2_finds_undecided_successor() {
        let m = CrashModel::new(3, 1, FloodMin::new(2));
        let mut solver = ValenceSolver::new(&m, 2);
        let x0 = solver.bivalent_initial_state().expect("bivalent initial");
        // x0 is bivalent: some successor keeps a non-failed process
        // undecided, so one round cannot suffice from here.
        let (y, undecided) = lemma_6_2_witness(&m, &x0).expect("Lemma 6.2 witness");
        assert!(!undecided.is_empty());
        assert_eq!(m.depth(&y), 1);
    }

    #[test]
    fn lemma_6_4_holds_for_fast_floodmin() {
        // FloodMin(t+1) is fast; after a failure-free round following <= k
        // failures in k rounds, the state must be univalent.
        let m = CrashModel::new(3, 1, FloodMin::new(2));
        let mut solver = ValenceSolver::new(&m, 3);
        assert_eq!(check_lemma_6_4(&m, &mut solver, 2), None);
    }

    #[test]
    fn lemma_3_1_bound_holds() {
        let m = CrashModel::new(3, 1, FloodMin::new(2));
        let mut solver = ValenceSolver::new(&m, 2);
        assert_eq!(check_lemma_3_1(&mut solver, 2), None);
    }

    #[test]
    fn display_holds_below_budget() {
        let m = CrashModel::new(4, 2, FloodMin::new(2));
        assert_eq!(check_display_below_budget(&m, 1), None);
    }

    #[test]
    fn bivalence_dies_at_budget_exhaustion() {
        // A state with t failures has a unique infinite S^t-extension, so it
        // must be univalent (first observation in Lemma 6.2's proof).
        let m = CrashModel::new(3, 1, FloodMin::new(3));
        let mut solver = ValenceSolver::new(&m, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let y = m.apply(&x, Some((Pid::new(0), 3)));
        assert_eq!(y.failure_count(), 1);
        assert_ne!(solver.valence(&y), Valence::Bivalent);
    }
}
