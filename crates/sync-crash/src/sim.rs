//! Adversary adapter: [`SimModel`] for the t-resilient synchronous model.
//!
//! An `S^t` layer move is either the failure-free round or a new failure
//! `(j, [k])` — process `j` newly fails with its messages to the prefix
//! `[k]` blocked. The adapter enforces the model's failure budget: fault
//! moves are only offered while fewer than `t` processes are failed, so
//! every simulated run is an `S^t`-execution by construction.

use layered_core::sim::{MoveRecord, SimModel};
use layered_core::{LayeredModel, Pid};
use layered_protocols::SyncProtocol;

use crate::model::CrashModel;

/// One `S^t` move.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CrashMove {
    /// The failure-free round `x(1, [0])`.
    Clean,
    /// Process `j` newly fails; its messages to the prefix `[k]` are lost.
    Crash {
        /// The newly failing process.
        j: Pid,
        /// The blocked destination prefix bound, `1 ≤ k ≤ n`.
        k: usize,
    },
}

impl<P: SyncProtocol> SimModel for CrashModel<P> {
    type Move = CrashMove;

    fn clean_move(&self, _x: &Self::State) -> CrashMove {
        CrashMove::Clean
    }

    fn fault_move(&self, x: &Self::State, target: Pid, intensity: usize) -> Option<CrashMove> {
        let n = self.num_processes();
        if x.failed.contains(&target) || x.failed.len() >= self.resilience() {
            return None;
        }
        Some(CrashMove::Crash {
            j: target,
            k: 1 + intensity % n,
        })
    }

    fn sample_move(&self, x: &Self::State, bits: &mut dyn FnMut(u64) -> u64) -> CrashMove {
        let n = self.num_processes();
        let alive: Vec<Pid> = if x.failed.len() < self.resilience() {
            Pid::all(n).filter(|j| !x.failed.contains(j)).collect()
        } else {
            Vec::new()
        };
        let options = 1 + (alive.len() * n) as u64;
        let i = bits(options);
        if i == 0 {
            CrashMove::Clean
        } else {
            let i = (i - 1) as usize;
            CrashMove::Crash {
                j: alive[i / n],
                k: i % n + 1,
            }
        }
    }

    fn apply_move(&self, x: &Self::State, mv: &CrashMove) -> Self::State {
        match *mv {
            CrashMove::Clean => self.apply(x, None),
            CrashMove::Crash { j, k } => self.apply(x, Some((j, k))),
        }
    }

    fn encode_move(&self, mv: &CrashMove) -> MoveRecord {
        match *mv {
            CrashMove::Clean => MoveRecord::clean(),
            CrashMove::Crash { j, k } => MoveRecord {
                kind: "crash",
                args: vec![j.index() as u64, k as u64],
                fault: true,
            },
        }
    }

    fn decode_move(&self, kind: &str, args: &[u64]) -> Option<CrashMove> {
        let n = self.num_processes();
        match (kind, args) {
            ("clean", []) => Some(CrashMove::Clean),
            ("crash", [j, k]) => {
                let (j, k) = (usize::try_from(*j).ok()?, usize::try_from(*k).ok()?);
                if j < n && (1..=n).contains(&k) {
                    Some(CrashMove::Crash { j: Pid::new(j), k })
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{LayeredModel, Value};
    use layered_protocols::FloodMin;

    use super::*;

    #[test]
    fn budget_gates_fault_moves() {
        let m = CrashModel::new(3, 1, FloodMin::new(3));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let f = m.fault_move(&x, Pid::new(1), 2).expect("budget available");
        let y = m.apply_move(&x, &f);
        // One failure recorded: the budget is now exhausted.
        assert!(m.fault_move(&y, Pid::new(0), 2).is_none());
        assert!(m.fault_move(&y, Pid::new(1), 2).is_none());
        // Sampling can only yield the clean move now.
        let mut bits = |bound: u64| bound - 1;
        assert_eq!(m.sample_move(&y, &mut bits), CrashMove::Clean);
    }

    #[test]
    fn every_move_lands_in_the_layer() {
        let m = CrashModel::new(3, 1, FloodMin::new(3));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let layer = m.successors(&x);
        let mut draws = 1u64;
        let mut bits = |bound: u64| {
            draws = draws.wrapping_mul(6364136223846793005).wrapping_add(7);
            draws % bound
        };
        for _ in 0..32 {
            let mv = m.sample_move(&x, &mut bits);
            assert!(layer.contains(&m.apply_move(&x, &mv)), "{mv:?}");
        }
        assert!(layer.contains(&m.apply_move(&x, &m.clean_move(&x))));
    }
}
