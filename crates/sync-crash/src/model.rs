//! The t-resilient synchronous message-passing model and the layering `S^t`
//! (Section 6 of the paper).
//!
//! Failure model: in the first round in which a process fails, the
//! environment blocks an arbitrary subset of its messages (prefixes `[k]`
//! under the layering); afterwards the process is silenced forever, and the
//! environment's state records the failure. At most `t` processes fail per
//! run, with `1 ≤ t ≤ n − 2`.
//!
//! The layering:
//!
//! ```text
//! S^t(x) = S₁(x)        if fewer than t processes are failed at x
//!          { x(1,[0]) }  otherwise (the unique failure-free successor)
//! ```
//!
//! From this the paper derives, and this crate makes executable:
//!
//! * Lemma 6.1 — from a bivalent state with `f` failures, a bivalent
//!   `S^t`-execution of `t − f − 1` further layers exists;
//! * Lemma 6.2 — after any bivalent state, some successor still has an
//!   undecided non-failed process (so two more rounds are needed);
//! * Corollary 6.3 — the Dolev–Strong `t + 1`-round lower bound;
//! * Lemma 6.4 — in a *fast* (always `t + 1`-round) protocol, a state
//!   reached by `k` failures in `k` rounds plus one failure-free round is
//!   univalent.

use std::collections::HashSet;

use layered_core::{
    canonicalize_by_min, canonicalize_packed, orbit_size, pack_decision, unpack_decision,
    LayeredModel, Pid, PidPerm, StatePacker, Symmetric, Value, DECISION_BITS,
};
use layered_protocols::{Anonymous, SyncProtocol};

use crate::state::CrashState;

/// Which successor function the model exposes through
/// [`LayeredModel::successors`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CrashLayering {
    /// The paper's `S^t`: a newly failing process blocks its messages to a
    /// prefix `[k]` of the processes.
    #[default]
    Prefix,
    /// The full failure environment: a newly failing process blocks its
    /// messages to an *arbitrary* destination subset `G`. (Exponential
    /// branching, but closed under process renaming — the layering the
    /// symmetry-reduced engine quotients.)
    Full,
}

/// The t-resilient synchronous model, parameterized by a deterministic
/// round protocol.
///
/// # Examples
///
/// FloodMin with deadline `t + 1` solves consensus; with deadline `t` the
/// checker finds the violation — the two halves of Corollary 6.3:
///
/// ```
/// use layered_core::check_consensus;
/// use layered_protocols::FloodMin;
/// use layered_sync_crash::CrashModel;
///
/// let good = CrashModel::new(3, 1, FloodMin::new(2));
/// assert!(check_consensus(&good, 2, 1).passed());
///
/// let bad = CrashModel::new(3, 1, FloodMin::new(1));
/// assert!(!check_consensus(&bad, 1, 1).passed());
/// ```
#[derive(Clone, Debug)]
pub struct CrashModel<P: SyncProtocol> {
    n: usize,
    t: usize,
    protocol: P,
    layering: CrashLayering,
    packer: Option<StatePacker<CrashState<P::LocalState>>>,
    perms: Vec<PidPerm>,
}

impl<P: SyncProtocol> CrashModel<P> {
    /// A model with `n` processes tolerating `t` failures.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ t ≤ n − 2` (the paper's standing assumption,
    /// which forces `n ≥ 3`).
    #[must_use]
    pub fn new(n: usize, t: usize, protocol: P) -> Self {
        assert!(n >= 3, "the Section 6 analysis assumes n >= 3");
        assert!((1..=n - 2).contains(&t), "requires 1 <= t <= n - 2");
        let packer = build_packer(n, &protocol);
        let perms = if packer.is_some() && n <= 8 {
            PidPerm::all(n)
        } else {
            Vec::new()
        };
        CrashModel {
            n,
            t,
            protocol,
            layering: CrashLayering::Prefix,
            packer,
            perms,
        }
    }

    /// Selects the successor function exposed by [`LayeredModel`].
    #[must_use]
    pub fn with_layering(mut self, layering: CrashLayering) -> Self {
        self.layering = layering;
        self
    }

    /// The resilience parameter `t`.
    #[must_use]
    pub fn resilience(&self) -> usize {
        self.t
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Applies one round in which `new_failure = Some((j, k))` makes `j`
    /// newly fail with its messages to the prefix `[k]` blocked, or
    /// `None` for a failure-free round. Previously failed processes are
    /// silent regardless.
    ///
    /// The failure is *recorded* only if a message is actually lost (the
    /// observable-fault convention), which also makes `x(1,[1])` — "block
    /// `p1`'s message to itself" — identical to the failure-free round.
    ///
    /// # Panics
    ///
    /// Panics if `j` is already failed, `k > n`, or the failure budget `t`
    /// is exhausted.
    #[must_use]
    pub fn apply(
        &self,
        x: &CrashState<P::LocalState>,
        new_failure: Option<(Pid, usize)>,
    ) -> CrashState<P::LocalState> {
        let prefixed = new_failure.map(|(j, k)| {
            assert!(k <= self.n, "prefix bound out of range");
            (j, Pid::all(k).collect::<Vec<_>>())
        });
        self.apply_subset(x, prefixed.as_ref().map(|(j, g)| (*j, g.as_slice())))
    }

    /// Like [`apply`](Self::apply), but `new_failure = Some((j, G))` blocks
    /// `j`'s messages to an *arbitrary* destination subset `G` — the general
    /// failure environment that [`CrashLayering::Full`] exposes.
    ///
    /// As with prefixes, the failure is recorded only if a message is
    /// actually lost, so `G ⊆ {j}` is identical to the failure-free round.
    ///
    /// # Panics
    ///
    /// Panics if `j` is already failed or the failure budget `t` is
    /// exhausted.
    #[must_use]
    pub fn apply_subset(
        &self,
        x: &CrashState<P::LocalState>,
        new_failure: Option<(Pid, &[Pid])>,
    ) -> CrashState<P::LocalState> {
        let n = self.n;
        let mut failed = x.failed.clone();
        let mut blocked: HashSet<(usize, usize)> = HashSet::new(); // (from, to)
        if let Some((j, lost_to)) = new_failure {
            assert!(!x.failed.contains(&j), "process already failed");
            assert!(x.failed.len() < self.t, "failure budget exhausted");
            for to in lost_to {
                if *to != j {
                    blocked.insert((j.index(), to.index()));
                }
            }
            if !blocked.is_empty() {
                failed.insert(j);
            }
        }

        let mut next_locals = Vec::with_capacity(n);
        let mut next_decided = x.decided.clone();
        #[allow(clippy::needless_range_loop)] // `to` doubles as message index
        for to in 0..n {
            let received: Vec<Option<P::Msg>> = (0..n)
                .map(|from| {
                    let silenced = from != to
                        && (x.failed.contains(&Pid::new(from)) || blocked.contains(&(from, to)));
                    (!silenced).then(|| self.protocol.message(&x.locals[from], Pid::new(to)))
                })
                .collect();
            let ls = self
                .protocol
                .transition(x.locals[to].clone(), Pid::new(to), &received);
            if next_decided[to].is_none() {
                next_decided[to] = self.protocol.decide(&ls);
            }
            next_locals.push(ls);
        }
        CrashState {
            round: x.round + 1,
            inputs: x.inputs.clone(),
            locals: next_locals,
            decided: next_decided,
            failed,
        }
    }

    /// The layer `S^t(x)`, deduplicated.
    #[must_use]
    pub fn layer(&self, x: &CrashState<P::LocalState>) -> Vec<CrashState<P::LocalState>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        // The failure-free successor x(1,[0]) always exists.
        let clean = self.apply(x, None);
        seen.insert(clean.clone());
        out.push(clean);
        if x.failed.len() < self.t {
            for j in Pid::all(self.n).filter(|j| !x.failed.contains(j)) {
                for k in 1..=self.n {
                    let y = self.apply(x, Some((j, k)));
                    if seen.insert(y.clone()) {
                        out.push(y);
                    }
                }
            }
        }
        out
    }

    /// The full-environment layer of `x`: `{ x(j, G) }` over all arbitrary
    /// destination subsets `G`, deduplicated (what
    /// [`CrashLayering::Full`] exposes as [`LayeredModel::successors`]).
    #[must_use]
    pub fn full_layer(&self, x: &CrashState<P::LocalState>) -> Vec<CrashState<P::LocalState>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let clean = self.apply_subset(x, None);
        seen.insert(clean.clone());
        out.push(clean);
        if x.failed.len() < self.t {
            for j in Pid::all(self.n).filter(|j| !x.failed.contains(j)) {
                for mask in 1..(1usize << self.n) {
                    let lost: Vec<Pid> = Pid::all(self.n)
                        .filter(|p| (mask >> p.index()) & 1 == 1)
                        .collect();
                    let y = self.apply_subset(x, Some((j, &lost)));
                    if seen.insert(y.clone()) {
                        out.push(y);
                    }
                }
            }
        }
        out
    }
}

/// Builds the packed codec for an `n`-process crash model, if the protocol
/// packs its local states and the lanes fit one word. Layout, low bits
/// first: `n` lanes of `2` input bits, [`DECISION_BITS`] decision bits and
/// the protocol's local codec; then 8 round bits; then the environment's
/// failure record as an `n`-bit membership mask.
fn build_packer<P: SyncProtocol>(
    n: usize,
    protocol: &P,
) -> Option<StatePacker<CrashState<P::LocalState>>> {
    let lp = protocol.local_packer()?;
    let lane = 2 + DECISION_BITS + lp.bits();
    let head = n as u32 * lane;
    if head + 8 + n as u32 > 127 {
        return None;
    }
    let pack = {
        let lp = lp.clone();
        move |x: &CrashState<P::LocalState>| {
            if x.locals.len() != n || x.round >= 1 << 8 {
                return None;
            }
            let mut w = u128::from(x.round) << head;
            for p in &x.failed {
                w |= 1 << (head + 8 + p.index() as u32);
            }
            for i in 0..n {
                let off = i as u32 * lane;
                let inp = u64::from(x.inputs[i].get());
                if inp >= 4 {
                    return None;
                }
                let dec = pack_decision(x.decided[i])?;
                let loc = lp.pack(&x.locals[i])?;
                w |= u128::from(inp) << off;
                w |= u128::from(dec) << (off + 2);
                w |= u128::from(loc) << (off + 2 + DECISION_BITS);
            }
            Some(w)
        }
    };
    let unpack = move |w: u128| {
        let mut inputs = Vec::with_capacity(n);
        let mut decided = Vec::with_capacity(n);
        let mut locals = Vec::with_capacity(n);
        for i in 0..n {
            let off = i as u32 * lane;
            inputs.push(Value::new(((w >> off) & 0b11) as u32));
            decided.push(unpack_decision(
                ((w >> (off + 2)) as u64) & ((1 << DECISION_BITS) - 1),
            ));
            locals.push(lp.unpack(((w >> (off + 2 + DECISION_BITS)) as u64) & lp.mask()));
        }
        CrashState {
            round: ((w >> head) & 0xFF) as u16,
            inputs,
            locals,
            decided,
            failed: (0..n)
                .filter(|i| w >> (head + 8 + *i as u32) & 1 == 1)
                .map(Pid::new)
                .collect(),
        }
    };
    let permute = move |w: u128, perm: &PidPerm| {
        let lane_mask = (1u128 << lane) - 1;
        // Round bits stay put; lanes and failure-mask bits relocate.
        let mut out = (w >> head & 0xFF) << head;
        for i in 0..n {
            let to = perm.apply(Pid::new(i)).index() as u32;
            let bits = (w >> (i as u32 * lane)) & lane_mask;
            out |= bits << (to * lane);
            out |= (w >> (head + 8 + i as u32) & 1) << (head + 8 + to);
        }
        out
    };
    Some(StatePacker::new(pack, unpack).with_permute(permute))
}

impl<P> CrashModel<P>
where
    P: SyncProtocol + Anonymous,
    P::LocalState: Ord,
{
    /// The single-sweep packed canonicalization, when the codec and the
    /// cached permutation table are available and `x` packs.
    fn packed_canon(
        &self,
        x: &CrashState<P::LocalState>,
    ) -> Option<(CrashState<P::LocalState>, PidPerm, u64)> {
        let packer = self.packer.as_ref()?;
        if self.perms.is_empty() {
            return None;
        }
        canonicalize_packed(self, packer, &self.perms, x)
    }
}

impl<P: SyncProtocol> LayeredModel for CrashModel<P> {
    type State = CrashState<P::LocalState>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        self.t
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        CrashState {
            round: 0,
            inputs: inputs.to_vec(),
            locals,
            decided,
            failed: std::collections::BTreeSet::new(),
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        match self.layering {
            CrashLayering::Prefix => self.layer(x),
            CrashLayering::Full => self.full_layer(x),
        }
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.round)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, x: &Self::State, i: Pid) -> bool {
        // A recorded process is silenced forever in every continuation, so
        // it is faulty in every run through x.
        x.failed.contains(&i)
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        // The failure record of process i is attributed to i's extended
        // state: records of processes other than j must match, j's may
        // differ. (Locals, decisions and inputs except j as usual.)
        x.round == y.round
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i]
                        && x.failed.contains(&Pid::new(i)) == y.failed.contains(&Pid::new(i)))
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        if !x.failed.contains(&j) && x.failed.len() < self.t {
            self.apply(x, Some((j, self.n)))
        } else {
            // j is already silenced (or the budget is exhausted): the
            // failure-free round is the canonical "j stays silent" step.
            self.apply(x, None)
        }
    }

    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        self.non_failed(x)
    }

    fn state_packer(&self) -> Option<StatePacker<Self::State>> {
        self.packer.clone()
    }
}

// Renaming relocates the per-process vectors and relabels the environment's
// failure record. For an anonymous protocol the *full* environment is
// equivariant — `(π·x)(π(j), π(G)) = π·(x(j, G))`, including the
// observable-fault record, since "some message actually lost" is
// renaming-invariant. The prefix layering `S^t` is not (prefixes `[k]` are
// not closed under renaming), so only `CrashLayering::Full` may be
// quotiented.
impl<P> Symmetric for CrashModel<P>
where
    P: SyncProtocol + Anonymous,
    P::LocalState: Ord,
{
    fn permute_state(&self, x: &Self::State, perm: &PidPerm) -> Self::State {
        CrashState {
            round: x.round,
            inputs: perm.permute_vec(&x.inputs),
            locals: perm.permute_vec(&x.locals),
            decided: perm.permute_vec(&x.decided),
            failed: x.failed.iter().map(|&p| perm.apply(p)).collect(),
        }
    }

    fn symmetric_layering(&self) -> bool {
        self.layering == CrashLayering::Full
    }

    // Packed fast path first, brute-force minimum as fallback; packability
    // is orbit-invariant, so each orbit sees exactly one rep rule.
    fn canonicalize(&self, x: &Self::State) -> (Self::State, PidPerm) {
        if let Some((rep, pi, _)) = self.packed_canon(x) {
            return (rep, pi);
        }
        canonicalize_by_min(self, x)
    }

    fn canonicalize_with_orbit(&self, x: &Self::State) -> (Self::State, PidPerm, u64) {
        if let Some(out) = self.packed_canon(x) {
            return out;
        }
        let (rep, pi) = canonicalize_by_min(self, x);
        (rep, pi, orbit_size(self, x) as u64)
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{check_fault_independence, check_graded, similarity_report, LayeredModel};
    use layered_protocols::FloodMin;

    use super::*;

    fn model(n: usize, t: usize, rounds: u16) -> CrashModel<FloodMin> {
        CrashModel::new(n, t, FloodMin::new(rounds))
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 1, 2);
        assert_eq!(check_graded(&m, 2), None);
        assert_eq!(check_fault_independence(&m, 2), None);
    }

    #[test]
    fn failure_is_recorded_and_silences_forever() {
        let m = model(3, 1, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        // p1 fails, blocking its messages to everyone.
        let y = m.apply(&x, Some((Pid::new(0), 3)));
        assert!(y.is_failed(Pid::new(0)));
        assert!(m.failed_at(&y, Pid::new(0)));
        // Next round is failure-free, but p1 stays silent: p2/p3 never learn 0.
        let z = m.apply(&y, None);
        let z2 = m.apply(&z, None);
        assert_eq!(z2.decided[1], Some(Value::ONE));
        assert_eq!(z2.decided[2], Some(Value::ONE));
    }

    #[test]
    fn self_only_block_is_failure_free() {
        // x(1,[1]) blocks only p1 -> p1, which is not a real message: the
        // state equals the failure-free round and records nothing.
        let m = model(3, 1, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let clean = m.apply(&x, None);
        let fake = m.apply(&x, Some((Pid::new(0), 1)));
        assert_eq!(clean, fake);
        assert!(fake.failed.is_empty());
    }

    #[test]
    fn budget_exhaustion_restricts_layer_to_clean() {
        let m = model(3, 1, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let y = m.apply(&x, Some((Pid::new(1), 3)));
        assert_eq!(y.failure_count(), 1);
        let layer = m.layer(&y);
        assert_eq!(layer.len(), 1, "S^t(y) = {{ failure-free }} once t failed");
    }

    #[test]
    #[should_panic(expected = "budget exhausted")]
    fn over_budget_failure_panics() {
        let m = model(3, 1, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let y = m.apply(&x, Some((Pid::new(1), 3)));
        let _ = m.apply(&y, Some((Pid::new(0), 3)));
    }

    #[test]
    fn layer_size_below_budget() {
        let m = model(4, 2, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE, Value::ZERO]);
        let layer = m.layer(&x);
        // clean + per (j, k>=1) actions, deduplicated; bounded by n*n + 1.
        assert!(layer.len() > 1 && layer.len() <= 4 * 4 + 1);
    }

    #[test]
    fn failed_set_only_grows() {
        let m = model(3, 1, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        for y in m.layer(&x) {
            assert!(y.failed.len() <= 1);
            for z in m.layer(&y) {
                assert!(y.failed.iter().all(|p| z.failed.contains(p)));
            }
        }
    }

    #[test]
    fn same_failure_chain_is_similarity_connected() {
        // x(j,[k]) ~s x(j,[k+1]) for k >= 1: equal failure records, one
        // local-state difference.
        let m = model(4, 2, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE, Value::ONE]);
        // j = p4 so that every prefix [k], k >= 1, blocks a real message and
        // all chain states carry the same failure record {p4}.
        let j = Pid::new(3);
        let states: Vec<_> = (1..=4).map(|k| m.apply(&x, Some((j, k)))).collect();
        let rep = similarity_report(&m, &states);
        assert!(
            rep.connected,
            "the prefix chain must be similarity connected"
        );
    }

    #[test]
    fn agree_modulo_attributes_failure_flag_to_its_process() {
        let m = model(3, 1, 3);
        // p3 holds the unique minimum so its blocked message is observable.
        let x = m.initial_state(&[Value::ONE, Value::ONE, Value::ZERO]);
        let clean = m.apply(&x, None);
        // p3 fails, blocking its message to p1 (prefix [1] = {p1}).
        let failed = m.apply(&x, Some((Pid::new(2), 1)));
        // These differ in p1's local AND p3's failure flag: they agree
        // modulo NEITHER p1 (flag of p3 differs) NOR p3 (local of p1
        // differs). This is the k = 0 link of the prefix chain, which is
        // genuinely not a similarity edge once failures are recorded.
        assert!(!m.agree_modulo(&clean, &failed, Pid::new(0)));
        assert!(!m.agree_modulo(&clean, &failed, Pid::new(2)));
    }

    #[test]
    fn floodmin_t_plus_one_solves_consensus() {
        // Tightness of Corollary 6.3 at (n, t) = (3, 1): exhaustive over all
        // S^t-runs of 2 rounds.
        let m = model(3, 1, 2);
        let report = layered_core::check_consensus(&m, 2, 5);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn floodmin_t_rounds_fails_consensus() {
        // The lower bound itself: a t-round protocol must violate a
        // requirement (here: agreement).
        let m = model(3, 1, 1);
        let report = layered_core::check_consensus(&m, 1, 5);
        assert!(!report.passed());
        assert!(report.of_kind("agreement").next().is_some());
    }
}
