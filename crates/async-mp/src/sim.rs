//! Adversary adapter: [`SimModel`] for the permutation-layering model.
//!
//! An `S^per` layer move *is* an environment action [`MpAction`]: a full
//! permutation, a drop-last arrangement (one process skipped), or a full
//! permutation with one adjacent pair concurrent. The layer has
//! `(n + 1)·n!` members, so enumerating it is hopeless beyond tiny `n` —
//! this adapter instead *builds* one action per layer (Fisher–Yates over
//! the adversary's entropy), which is what lets the simulation runtime run
//! this model at `n = 16` and beyond.
//!
//! Fault accounting: only drop-last actions skip a process and count as
//! faults; permutation and concurrency choices are fault-free scheduling.

use layered_core::sim::{MoveRecord, SimModel};
use layered_core::{LayeredModel, Pid};
use layered_protocols::MpProtocol;

use crate::model::{MpAction, MpModel};

/// A uniformly random permutation of `p1 … pn` via Fisher–Yates, drawing
/// from `bits`.
fn random_perm(n: usize, bits: &mut dyn FnMut(u64) -> u64) -> Vec<Pid> {
    let mut order: Vec<Pid> = Pid::all(n).collect();
    for i in (1..n).rev() {
        let j = bits(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

impl<P: MpProtocol> SimModel for MpModel<P> {
    type Move = MpAction;

    fn clean_move(&self, _x: &Self::State) -> MpAction {
        MpAction::Sequential(Pid::all(self.num_processes()).collect())
    }

    fn fault_move(&self, _x: &Self::State, target: Pid, intensity: usize) -> Option<MpAction> {
        // Skip `target` this layer: a drop-last action over the others.
        // Intensity rotates their order (every (n−1)-arrangement is legal).
        let others: Vec<Pid> = Pid::all(self.num_processes())
            .filter(|&p| p != target)
            .collect();
        let rot = intensity % others.len();
        let mut order = others[rot..].to_vec();
        order.extend_from_slice(&others[..rot]);
        Some(MpAction::Sequential(order))
    }

    fn sample_move(&self, _x: &Self::State, bits: &mut dyn FnMut(u64) -> u64) -> MpAction {
        let n = self.num_processes();
        let order = random_perm(n, bits);
        match bits(3) {
            0 => MpAction::Sequential(order),
            1 => {
                let at = bits(n as u64 - 1) as usize;
                MpAction::Concurrent { order, at }
            }
            _ => {
                // Drop the last element of the random permutation: exactly a
                // drop-last arrangement.
                let mut dropped = order;
                dropped.pop();
                MpAction::Sequential(dropped)
            }
        }
    }

    fn apply_move(&self, x: &Self::State, mv: &MpAction) -> Self::State {
        self.apply(x, mv)
    }

    fn encode_move(&self, mv: &MpAction) -> MoveRecord {
        let n = self.num_processes();
        match mv {
            MpAction::Sequential(order) if order.len() == n => MoveRecord {
                kind: "seq",
                args: order.iter().map(|p| p.index() as u64).collect(),
                fault: false,
            },
            MpAction::Sequential(order) => MoveRecord {
                kind: "drop",
                args: order.iter().map(|p| p.index() as u64).collect(),
                fault: true,
            },
            MpAction::Concurrent { order, at } => {
                let mut args = vec![*at as u64];
                args.extend(order.iter().map(|p| p.index() as u64));
                MoveRecord {
                    kind: "conc",
                    args,
                    fault: false,
                }
            }
        }
    }

    fn decode_move(&self, kind: &str, args: &[u64]) -> Option<MpAction> {
        let n = self.num_processes();
        let order_of = |ids: &[u64]| -> Option<Vec<Pid>> {
            let mut seen = vec![false; n];
            let mut order = Vec::with_capacity(ids.len());
            for &id in ids {
                let i = usize::try_from(id).ok().filter(|&i| i < n)?;
                if std::mem::replace(&mut seen[i], true) {
                    return None; // duplicate process in the arrangement
                }
                order.push(Pid::new(i));
            }
            Some(order)
        };
        match kind {
            "seq" if args.len() == n => Some(MpAction::Sequential(order_of(args)?)),
            "drop" if args.len() == n - 1 => Some(MpAction::Sequential(order_of(args)?)),
            "conc" if args.len() == n + 1 => {
                let at = usize::try_from(args[0]).ok().filter(|&at| at + 1 < n)?;
                Some(MpAction::Concurrent {
                    order: order_of(&args[1..])?,
                    at,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{LayeredModel, Value};
    use layered_protocols::MpFloodMin;

    use super::*;

    #[test]
    fn every_move_lands_in_the_layer() {
        let m = MpModel::new(3, MpFloodMin::new(2));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let layer = m.successors(&x);
        let mut draws = 3u64;
        let mut bits = |bound: u64| {
            draws = draws.wrapping_mul(6364136223846793005).wrapping_add(7);
            draws % bound
        };
        for _ in 0..48 {
            let mv = m.sample_move(&x, &mut bits);
            assert!(layer.contains(&m.apply_move(&x, &mv)), "{mv:?}");
        }
        assert!(layer.contains(&m.apply_move(&x, &m.clean_move(&x))));
        let f = m.fault_move(&x, Pid::new(1), 1).expect("always legal");
        assert!(layer.contains(&m.apply_move(&x, &f)));
        assert!(m.is_fault(&f));
    }

    #[test]
    fn fault_move_skips_exactly_the_target() {
        let m = MpModel::new(4, MpFloodMin::new(2));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE, Value::ZERO]);
        for intensity in 0..5 {
            let mv = m.fault_move(&x, Pid::new(2), intensity).expect("legal");
            let y = m.apply_move(&x, &mv);
            assert_eq!(y.phases_done[2], 0, "target took no phase");
            assert!((0..4).filter(|&i| i != 2).all(|i| y.phases_done[i] == 1));
        }
    }
}
