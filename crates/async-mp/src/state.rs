//! Global states of the asynchronous message-passing model.

use layered_core::{Pid, SnapshotError, SnapshotReader, SnapshotState, Value};

/// A global state of the asynchronous message-passing model under the
/// permutation layering.
///
/// # Representation of messages in transit
///
/// Each undelivered message sits in its **receiver's mailbox**, and for the
/// purposes of `agree modulo j` the mailbox of process `i` is treated as
/// part of `i`'s (extended) local state. This is the bookkeeping under which
/// the paper's Section 5.1 similarity claims hold at the state level:
///
/// * adjacent-transposition layer states differ only in one process's
///   protocol state *and mailbox* — so they agree modulo that process;
/// * `x[p₁…pₙ]` and `x[p₁…p_{n−1}]` do **not** agree modulo `pₙ`, because
///   `pₙ`'s sent messages sit in *other* processes' mailboxes — which is
///   precisely why the diamond (common-successor) argument is needed there.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MpState<L, M> {
    /// Completed layers.
    pub round: u16,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// Per-process protocol local states.
    pub locals: Vec<L>,
    /// Per-process write-once decision variables `d_i`.
    pub decided: Vec<Option<Value>>,
    /// Per-process count of completed local phases.
    pub phases_done: Vec<u16>,
    /// Per-process mailboxes of undelivered messages, in arrival order.
    pub mailboxes: Vec<Vec<(Pid, M)>>,
}

impl<L, M> MpState<L, M> {
    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Whether the state is degenerate (no processes). Never true for
    /// model-produced states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// The decision of process `i`, if made.
    #[must_use]
    pub fn decision(&self, i: Pid) -> Option<Value> {
        self.decided[i.index()]
    }

    /// Total number of undelivered messages.
    #[must_use]
    pub fn in_transit(&self) -> usize {
        self.mailboxes.iter().map(Vec::len).sum()
    }

    /// Processes that completed every local phase so far.
    pub fn always_proper(&self) -> impl Iterator<Item = Pid> + '_ {
        let round = self.round;
        self.phases_done
            .iter()
            .enumerate()
            .filter(move |(_, &c)| c == round)
            .map(|(i, _)| Pid::new(i))
    }
}

impl<L: SnapshotState, M: SnapshotState> SnapshotState for MpState<L, M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.inputs.encode(out);
        self.locals.encode(out);
        self.decided.encode(out);
        self.phases_done.encode(out);
        self.mailboxes.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MpState {
            round: u16::decode(r)?,
            inputs: Vec::decode(r)?,
            locals: Vec::decode(r)?,
            decided: Vec::decode(r)?,
            phases_done: Vec::decode(r)?,
            mailboxes: Vec::decode(r)?,
        })
    }
}
