//! The asynchronous message-passing model and the *permutation layering*
//! `S^per`, per Section 5.1 of Moses & Rajsbaum, PODC 1998 — the
//! message-passing analogue of immediate-snapshot executions.
//!
//! A local phase is send-then-receive: a process emits at most one message
//! per destination (computed from its state at the start of the phase) and
//! then absorbs everything outstanding for it. Layers are driven by
//! permutation-shaped environment actions: full `[p₁…pₙ]`, drop-last
//! `[p₁…p_{n−1}]`, and adjacent-concurrent `[p₁…{p_k,p_{k+1}}…pₙ]`.
//!
//! # Representation note
//!
//! The paper's extended abstract describes a phase as deliver-then-send; we
//! implement the immediate-snapshot-faithful send-then-receive order, under
//! which the paper's structural claims hold as *exact state-level* facts
//! (checked in tests and experiments): adjacent-transposition states agree
//! modulo one process, the two-layer diamond is a state equality, and full
//! vs. drop-last states are *not* similar. With deliver-then-send, a
//! process's post-receive sends differ between the transposed schedules and
//! contaminate every downstream process within the layer, so the claimed
//! similarity chain fails at the state level; the send-then-receive order
//! is the reading under which "it is easy to check" is true. Undelivered
//! messages live in receiver-attributed mailboxes (see
//! [`MpState`]) rather than in an anonymous environment pool, which is the
//! bookkeeping the similarity claims need; runs and reachable protocol
//! behaviors are unaffected by this choice.
//!
//! A second layering is provided in [`MpSyncModel`]: the *synchronic*
//! layering transferred to message passing (`Send₁ Recv₁ Send₂ Recv₂`
//! virtual rounds), per the paper's remark that the shared-memory proof
//! carries over unchanged and yields a submodel "even closer to the
//! synchronous models".
//!
//! # Example
//!
//! ```
//! use layered_core::{build_bivalent_run, ValenceSolver};
//! use layered_protocols::MpFloodMin;
//! use layered_async_mp::MpModel;
//!
//! let m = MpModel::new(3, MpFloodMin::new(2));
//! let mut solver = ValenceSolver::new(&m, 2);
//! let run = build_bivalent_run(&mut solver, 1);
//! assert!(run.chain.is_some()); // a bivalent initial state exists (FLP)
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod model;
mod perm;
mod sim;
mod state;
mod synchronic;

pub use model::{MpAction, MpModel};
pub use perm::{drop_last_arrangements, permutations, transposition_path};
pub use state::MpState;
pub use synchronic::{MpSyncAction, MpSyncModel};

/// Stable key identifying this model in certificate stores and query URLs.
pub const MODEL_KEY: &str = "async-mp";

/// Claims the certificate registry can compute and serve for this model:
/// the Theorem 4.2 impossibility witness (the FLP analogue under `S^per`).
pub const CLAIM_KEYS: &[&str] = &["theorem_4_2"];
