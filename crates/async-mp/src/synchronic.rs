//! The *synchronic* layering for asynchronous message passing.
//!
//! Section 5.1 remarks that "a completely analogous impossibility proof can
//! be given for asynchronous message passing as well. The structure of the
//! layering function, and the reasoning underlying the results remain
//! unchanged" — and that the resulting submodel "is even closer to the
//! synchronous models that are popular in the literature". This module is
//! that layering: virtual rounds with stages `Send₁ Recv₁ Send₂ Recv₂`
//! mirroring the shared-memory `W₁ R₁ W₂ R₂`:
//!
//! * `(j, A)` — `j` is absent: the proper processes send (from their
//!   pre-round states) and then receive; `j` does nothing and its mailbox
//!   accumulates.
//! * `(j, k)` — the proper processes send first; proper processes `i ≤ k`
//!   receive *early* (missing `j`'s message), then `j` sends, then `j` and
//!   the proper processes `i > k` receive late.
//!
//! The Lemma 5.3 bridge `x(j,n)(j,A) ≡ x(j,A)(j,0) (mod j)` transfers
//! verbatim ([`MpSyncModel::bridge_agrees`]), and with it valence
//! connectivity of every layer and the FLP-style impossibility.

use std::collections::HashSet;

use layered_core::{LayeredModel, Pid, Value};
use layered_protocols::MpProtocol;

use crate::state::MpState;

/// An environment action of the message-passing synchronic layering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MpSyncAction {
    /// `(j, A)`: `j` neither sends nor receives this round.
    Absent(Pid),
    /// `(j, k)`: `j` sends late; proper processes with 0-based index `< k`
    /// receive early (missing `j`'s fresh message).
    Staggered {
        /// The slow process.
        j: Pid,
        /// The early-receiver prefix bound `0 ≤ k ≤ n`.
        k: usize,
    },
}

/// The asynchronous message-passing model under the synchronic layering —
/// the "even closer to synchronous" submodel of the Section 5.1 remark.
///
/// # Examples
///
/// ```
/// use layered_core::check_consensus;
/// use layered_protocols::MpFloodMin;
/// use layered_async_mp::MpSyncModel;
///
/// let m = MpSyncModel::new(3, MpFloodMin::new(2));
/// assert!(!check_consensus(&m, 2, 1).passed());
/// ```
#[derive(Clone, Debug)]
pub struct MpSyncModel<P: MpProtocol> {
    n: usize,
    protocol: P,
    obligation: Option<u16>,
}

impl<P: MpProtocol> MpSyncModel<P> {
    /// A model with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, protocol: P) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        MpSyncModel {
            n,
            protocol,
            obligation: None,
        }
    }

    /// Obliges every process with at least `phases` completed rounds to
    /// have decided at horizon states.
    #[must_use]
    pub fn with_obligation(mut self, phases: u16) -> Self {
        self.obligation = Some(phases);
        self
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All actions of a layer.
    #[must_use]
    pub fn actions(&self) -> Vec<MpSyncAction> {
        let mut out = Vec::new();
        for j in Pid::all(self.n) {
            for k in 0..=self.n {
                out.push(MpSyncAction::Staggered { j, k });
            }
            out.push(MpSyncAction::Absent(j));
        }
        out
    }

    fn send_step(&self, state: &mut MpState<P::LocalState, P::Msg>, p: Pid) {
        let sends = self.protocol.send(&state.locals[p.index()], p, self.n);
        let mut dests = HashSet::new();
        for (to, msg) in sends {
            assert_ne!(to, p, "protocols do not send to themselves");
            assert!(dests.insert(to), "at most one message per destination");
            let mailbox = &mut state.mailboxes[to.index()];
            mailbox.push((p, msg));
            mailbox.sort_by_key(|&(from, _)| from);
        }
    }

    fn receive_step(&self, state: &mut MpState<P::LocalState, P::Msg>, p: Pid) {
        let delivered = std::mem::take(&mut state.mailboxes[p.index()]);
        let ls = self
            .protocol
            .absorb(state.locals[p.index()].clone(), p, &delivered);
        if state.decided[p.index()].is_none() {
            state.decided[p.index()] = self.protocol.decide(&ls);
        }
        state.locals[p.index()] = ls;
        state.phases_done[p.index()] += 1;
    }

    /// Applies one `Send₁ Recv₁ Send₂ Recv₂` virtual round.
    #[must_use]
    pub fn apply(
        &self,
        x: &MpState<P::LocalState, P::Msg>,
        action: MpSyncAction,
    ) -> MpState<P::LocalState, P::Msg> {
        let n = self.n;
        let mut state = x.clone();
        let (j, early_bound, j_participates) = match action {
            MpSyncAction::Absent(j) => (j, n, false),
            MpSyncAction::Staggered { j, k } => {
                assert!(k <= n, "k ranges over 0..=n");
                (j, k, true)
            }
        };
        // Send₁: proper processes send from their pre-round states.
        for i in 0..n {
            if i != j.index() {
                self.send_step(&mut state, Pid::new(i));
            }
        }
        // Recv₁: early proper receivers drain (missing j's message).
        for i in 0..n {
            if i != j.index() && i < early_bound {
                self.receive_step(&mut state, Pid::new(i));
            }
        }
        // Send₂: j sends.
        if j_participates {
            self.send_step(&mut state, j);
        }
        // Recv₂: the rest drain.
        for i in 0..n {
            if i != j.index() && i >= early_bound {
                self.receive_step(&mut state, Pid::new(i));
            }
        }
        if j_participates {
            self.receive_step(&mut state, j);
        }
        state.round = x.round + 1;
        state
    }

    /// The layer `S(x)`, deduplicated.
    #[must_use]
    pub fn layer(&self, x: &MpState<P::LocalState, P::Msg>) -> Vec<MpState<P::LocalState, P::Msg>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for action in self.actions() {
            let y = self.apply(x, action);
            if seen.insert(y.clone()) {
                out.push(y);
            }
        }
        out
    }

    /// The Lemma 5.3 bridge, transferred to message passing:
    /// `x(j,n)(j,A)` and `x(j,A)(j,0)` agree modulo `j`.
    #[must_use]
    pub fn bridge_agrees(&self, x: &MpState<P::LocalState, P::Msg>, j: Pid) -> bool {
        let y = self.apply(
            &self.apply(x, MpSyncAction::Staggered { j, k: self.n }),
            MpSyncAction::Absent(j),
        );
        let y2 = self.apply(
            &self.apply(x, MpSyncAction::Absent(j)),
            MpSyncAction::Staggered { j, k: 0 },
        );
        self.agree_modulo(&y, &y2, j)
    }
}

impl<P: MpProtocol> LayeredModel for MpSyncModel<P> {
    type State = MpState<P::LocalState, P::Msg>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        MpState {
            round: 0,
            inputs: inputs.to_vec(),
            locals,
            decided,
            phases_done: vec![0; self.n],
            mailboxes: vec![Vec::new(); self.n],
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        self.layer(x)
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.round)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, _x: &Self::State, _i: Pid) -> bool {
        false
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        x.round == y.round
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i]
                        && x.phases_done[i] == y.phases_done[i]
                        && x.mailboxes[i] == y.mailboxes[i])
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        self.apply(x, MpSyncAction::Absent(j))
    }

    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        match self.obligation {
            Some(r) => Pid::all(self.n)
                .filter(|i| x.phases_done[i.index()] >= r)
                .collect(),
            None => x.always_proper().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{
        build_bivalent_run, check_consensus, check_fault_independence, check_graded,
        valence_report, ValenceSolver,
    };
    use layered_protocols::MpFloodMin;

    use super::*;

    fn model(n: usize, phases: u16) -> MpSyncModel<MpFloodMin> {
        MpSyncModel::new(n, MpFloodMin::new(phases))
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 2);
        assert_eq!(check_graded(&m, 2), None);
        assert_eq!(check_fault_independence(&m, 1), None);
    }

    #[test]
    fn action_j_zero_is_j_independent() {
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let a = m.apply(
            &x,
            MpSyncAction::Staggered {
                j: Pid::new(0),
                k: 0,
            },
        );
        let b = m.apply(
            &x,
            MpSyncAction::Staggered {
                j: Pid::new(2),
                k: 0,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn staggering_controls_visibility() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let j = Pid::new(0); // holds the minimum
                             // Everyone proper receives early: they miss j's 0.
        let y = m.apply(&x, MpSyncAction::Staggered { j, k: 3 });
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[2], Some(Value::ONE));
        // k = 0: everyone receives late and sees j's 0.
        let z = m.apply(&x, MpSyncAction::Staggered { j, k: 0 });
        assert_eq!(z.decided[1], Some(Value::ZERO));
        assert_eq!(z.decided[2], Some(Value::ZERO));
    }

    #[test]
    fn absent_process_accumulates_mail() {
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let y = m.apply(&x, MpSyncAction::Absent(Pid::new(0)));
        assert_eq!(y.phases_done, vec![0, 1, 1]);
        assert_eq!(y.mailboxes[0].len(), 2, "undrained offers from the proper");
    }

    #[test]
    fn bridge_transfers_to_message_passing() {
        let m = model(3, 4);
        for x in m.initial_states() {
            for j in Pid::all(3) {
                assert!(m.bridge_agrees(&x, j), "bridge failed at {x:?}, j={j}");
            }
        }
        // One layer deeper as well.
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let x1 = m.apply(
            &x,
            MpSyncAction::Staggered {
                j: Pid::new(1),
                k: 2,
            },
        );
        for j in Pid::all(3) {
            assert!(m.bridge_agrees(&x1, j));
        }
    }

    #[test]
    fn layers_valence_connected_and_runs_bivalent() {
        let m = model(3, 2);
        let mut solver = ValenceSolver::new(&m, 2);
        let x0 = solver.bivalent_initial_state().expect("bivalent init");
        let rep = valence_report(&m, &mut solver, &m.layer(&x0));
        assert!(rep.connected);
        assert!(build_bivalent_run(&mut solver, 1).reached_target());
    }

    #[test]
    fn consensus_is_refuted() {
        for r in 1..=2u16 {
            let m = model(3, r);
            assert!(!check_consensus(&m, usize::from(r), 1).passed());
        }
    }
}
