//! Permutation and arrangement generators for the permutation layering.

use layered_core::Pid;

/// All permutations of the `n` process identifiers, in lexicographic order.
///
/// # Examples
///
/// ```
/// use layered_async_mp::permutations;
/// assert_eq!(permutations(3).len(), 6);
/// assert_eq!(permutations(1).len(), 1);
/// ```
#[must_use]
pub fn permutations(n: usize) -> Vec<Vec<Pid>> {
    let mut out = Vec::new();
    let mut current: Vec<Pid> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    fn rec(n: usize, used: &mut [bool], current: &mut Vec<Pid>, out: &mut Vec<Vec<Pid>>) {
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for i in 0..n {
            if !used[i] {
                used[i] = true;
                current.push(Pid::new(i));
                rec(n, used, current, out);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(n, &mut used, &mut current, &mut out);
    out
}

/// All arrangements (ordered selections) of `n − 1` of the `n` process
/// identifiers — the orders of the paper's drop-last actions
/// `[p₁, …, p_{n−1}]`.
///
/// There are exactly `n!` of them (the omitted process is determined by the
/// arrangement, and each permutation truncates to a distinct arrangement).
#[must_use]
pub fn drop_last_arrangements(n: usize) -> Vec<Vec<Pid>> {
    permutations(n)
        .into_iter()
        .map(|mut p| {
            p.pop();
            p
        })
        .collect()
}

/// The sequence of adjacent transpositions that sorts `from` into `to`,
/// expressed as the intermediate permutations (inclusive endpoints).
///
/// This is the spanning path used in the paper's argument that the
/// full-action successors of a state are similarity connected ("the fact
/// that transpositions span all permutations").
///
/// # Panics
///
/// Panics if `from` and `to` are not permutations of the same set.
#[must_use]
pub fn transposition_path(from: &[Pid], to: &[Pid]) -> Vec<Vec<Pid>> {
    let mut check_from = from.to_vec();
    let mut check_to = to.to_vec();
    check_from.sort();
    check_to.sort();
    assert_eq!(check_from, check_to, "inputs must permute the same set");

    let mut path = vec![from.to_vec()];
    let mut cur = from.to_vec();
    // Selection-sort `cur` into `to` using adjacent swaps (bubble the right
    // element leftwards), recording every intermediate permutation.
    for (i, &target) in to.iter().enumerate() {
        let pos = cur
            .iter()
            .position(|&p| p == target)
            .expect("same element set");
        for k in (i..pos).rev() {
            cur.swap(k, k + 1);
            path.push(cur.clone());
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // All distinct.
        let mut ps = permutations(4);
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), 24);
    }

    #[test]
    fn drop_last_counts_and_distinctness() {
        let ds = drop_last_arrangements(3);
        assert_eq!(ds.len(), 6);
        let mut sorted = ds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "each arrangement appears exactly once");
        assert!(ds.iter().all(|d| d.len() == 2));
    }

    #[test]
    fn transposition_path_endpoints_and_steps() {
        let perms = permutations(4);
        for a in perms.iter().take(6) {
            for b in perms.iter().rev().take(6) {
                let path = transposition_path(a, b);
                assert_eq!(&path[0], a);
                assert_eq!(path.last().expect("non-empty"), b);
                for w in path.windows(2) {
                    let diffs: Vec<usize> = (0..4).filter(|&i| w[0][i] != w[1][i]).collect();
                    assert_eq!(diffs.len(), 2, "adjacent transposition");
                    assert_eq!(diffs[1], diffs[0] + 1, "swap positions adjacent");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "same set")]
    fn transposition_path_rejects_mismatched_sets() {
        let _ = transposition_path(&[Pid::new(0)], &[Pid::new(1)]);
    }
}
