//! The asynchronous message-passing model under the *permutation layering*
//! `S^per` (Section 5.1 of the paper).
//!
//! A local phase of process `i` is a send step (at most one message per
//! destination, computed from `i`'s state at the start of the phase)
//! followed by a receive step (absorb every outstanding message). The
//! environment schedules local phases with actions of three shapes:
//!
//! * `[p₁, …, pₙ]` — a full permutation: everyone takes a phase, in order;
//! * `[p₁, …, p_{n−1}]` — drop-last: one process is skipped entirely;
//! * `[p₁, …, {p_k, p_{k+1}}, …, pₙ]` — full, but one adjacent pair acts
//!   *concurrently*: both send before either receives, so each sees the
//!   other's current-phase message.
//!
//! This is the message-passing analogue of immediate-snapshot executions
//! (the paper notes no such analogue had been proposed before). The three
//! structural facts driving valence connectivity of a layer are all
//! executable here:
//!
//! * [`MpModel::transposition_bridges`] — sequential and concurrent
//!   versions of an adjacent pair agree modulo a single process;
//! * [`MpModel::diamond_identity_holds`] — the two-layer diamond
//!   `x[p₁…pₙ][p₁…p_{n−1}] = x[p₁…p_{n−1}][pₙ, p₁…p_{n−1}]` is an exact
//!   state equality ("the FLP diamond argument reduced to its bare
//!   minimum");
//! * the footnote that `x[p₁…pₙ] ≁_s x[p₁…p_{n−1}]` — their differences
//!   spill into other processes' mailboxes.

use std::collections::HashSet;

use layered_core::{
    canonicalize_by_min, pack_decision, unpack_decision, LayeredModel, Pid, PidPerm, StatePacker,
    Symmetric, Value, WordReader, WordWriter, DECISION_BITS,
};
use layered_protocols::{Anonymous, MpProtocol};

use crate::perm::{drop_last_arrangements, permutations};
use crate::state::MpState;

/// An environment action of the permutation layering.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MpAction {
    /// Processes take local phases strictly in the given order. A full
    /// action lists all `n` processes; a drop-last action lists `n − 1`.
    Sequential(Vec<Pid>),
    /// All `n` processes take phases in order, except that the pair at
    /// positions `(at, at + 1)` acts concurrently (both send, then both
    /// receive).
    Concurrent {
        /// The full order (length `n`).
        order: Vec<Pid>,
        /// Position of the first element of the concurrent pair
        /// (`at + 1 < n`).
        at: usize,
    },
}

/// The asynchronous message-passing model, parameterized by a deterministic
/// phase protocol.
///
/// # Examples
///
/// ```
/// use layered_core::check_consensus;
/// use layered_protocols::MpFloodMin;
/// use layered_async_mp::MpModel;
///
/// let m = MpModel::new(3, MpFloodMin::new(2));
/// // FLP via the permutation layering: the checker exhibits a violation
/// // for this candidate at its own deadline.
/// assert!(!check_consensus(&m, 2, 1).passed());
/// ```
#[derive(Clone, Debug)]
pub struct MpModel<P: MpProtocol> {
    n: usize,
    protocol: P,
    obligation: Option<u16>,
    packer: Option<StatePacker<MpState<P::LocalState, P::Msg>>>,
}

impl<P: MpProtocol> MpModel<P> {
    /// A model with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, protocol: P) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        let packer = build_packer(n, &protocol);
        MpModel {
            n,
            protocol,
            obligation: None,
            packer,
        }
    }

    /// Obliges every process with at least `phases` completed local phases
    /// to have decided at horizon states.
    #[must_use]
    pub fn with_obligation(mut self, phases: u16) -> Self {
        self.obligation = Some(phases);
        self
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All actions available in a layer: `n!` full, `n!` drop-last, and
    /// `(n−1)·n!` concurrent-pair actions.
    #[must_use]
    pub fn actions(&self) -> Vec<MpAction> {
        let mut out = Vec::new();
        for p in permutations(self.n) {
            for at in 0..self.n.saturating_sub(1) {
                out.push(MpAction::Concurrent {
                    order: p.clone(),
                    at,
                });
            }
            out.push(MpAction::Sequential(p));
        }
        for a in drop_last_arrangements(self.n) {
            out.push(MpAction::Sequential(a));
        }
        out
    }

    /// One local phase of `p`: send from the pre-phase state, deliver into
    /// mailboxes, then drain and absorb the own mailbox.
    fn run_phase(&self, state: &mut MpState<P::LocalState, P::Msg>, p: Pid) {
        self.send_step(state, p);
        self.receive_step(state, p);
    }

    fn send_step(&self, state: &mut MpState<P::LocalState, P::Msg>, p: Pid) {
        let sends = self.protocol.send(&state.locals[p.index()], p, self.n);
        let mut dests = HashSet::new();
        for (to, msg) in sends {
            assert_ne!(to, p, "protocols do not send to themselves");
            assert!(
                dests.insert(to),
                "at most one message per destination per phase"
            );
            let mailbox = &mut state.mailboxes[to.index()];
            mailbox.push((p, msg));
            // Canonical mailbox order: channels are FIFO per sender but
            // unordered across senders, so mailboxes are kept sender-sorted
            // (stable, preserving per-sender FIFO). This keeps states of
            // schedules that differ only in cross-sender arrival order equal.
            mailbox.sort_by_key(|&(from, _)| from);
        }
    }

    fn receive_step(&self, state: &mut MpState<P::LocalState, P::Msg>, p: Pid) {
        let delivered = std::mem::take(&mut state.mailboxes[p.index()]);
        let ls = self
            .protocol
            .absorb(state.locals[p.index()].clone(), p, &delivered);
        if state.decided[p.index()].is_none() {
            state.decided[p.index()] = self.protocol.decide(&ls);
        }
        state.locals[p.index()] = ls;
        state.phases_done[p.index()] += 1;
    }

    /// Applies an environment action (one layer).
    ///
    /// # Panics
    ///
    /// Panics if the action is malformed (wrong length, repeated processes,
    /// or a concurrent position out of range).
    #[must_use]
    pub fn apply(
        &self,
        x: &MpState<P::LocalState, P::Msg>,
        action: &MpAction,
    ) -> MpState<P::LocalState, P::Msg> {
        let mut state = x.clone();
        match action {
            MpAction::Sequential(order) => {
                assert!(
                    order.len() == self.n || order.len() + 1 == self.n,
                    "sequential actions list n or n-1 processes"
                );
                assert_distinct(order);
                for &p in order {
                    self.run_phase(&mut state, p);
                }
            }
            MpAction::Concurrent { order, at } => {
                assert_eq!(order.len(), self.n, "concurrent actions are full");
                assert_distinct(order);
                assert!(at + 1 < self.n, "pair position out of range");
                for (pos, &p) in order.iter().enumerate() {
                    if pos == *at {
                        // Both send before either receives.
                        let q = order[*at + 1];
                        self.send_step(&mut state, p);
                        self.send_step(&mut state, q);
                        self.receive_step(&mut state, p);
                        self.receive_step(&mut state, q);
                    } else if pos == *at + 1 {
                        // handled together with `at`
                    } else {
                        self.run_phase(&mut state, p);
                    }
                }
            }
        }
        state.round = x.round + 1;
        state
    }

    /// The layer `S^per(x)`, deduplicated.
    #[must_use]
    pub fn layer(&self, x: &MpState<P::LocalState, P::Msg>) -> Vec<MpState<P::LocalState, P::Msg>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for action in self.actions() {
            let y = self.apply(x, &action);
            if seen.insert(y.clone()) {
                out.push(y);
            }
        }
        out
    }

    /// Checks the two similarity bridges around an adjacent pair at
    /// positions `(at, at+1)` of `order`:
    ///
    /// * `x[…, p_k, p_{k+1}, …]` agrees modulo `p_k` with the concurrent
    ///   version (only `p_k` sees `p_{k+1}`'s fresh message in the latter);
    /// * the concurrent version agrees modulo `p_{k+1}` with
    ///   `x[…, p_{k+1}, p_k, …]`.
    ///
    /// Returns `(first_holds, second_holds)`.
    #[must_use]
    pub fn transposition_bridges(
        &self,
        x: &MpState<P::LocalState, P::Msg>,
        order: &[Pid],
        at: usize,
    ) -> (bool, bool) {
        let seq = self.apply(x, &MpAction::Sequential(order.to_vec()));
        let conc = self.apply(
            x,
            &MpAction::Concurrent {
                order: order.to_vec(),
                at,
            },
        );
        let mut swapped = order.to_vec();
        swapped.swap(at, at + 1);
        let seq_swapped = self.apply(x, &MpAction::Sequential(swapped));
        (
            self.agree_modulo(&seq, &conc, order[at]),
            self.agree_modulo(&conc, &seq_swapped, order[at + 1]),
        )
    }

    /// Checks the paper's diamond identity at `x` for the given full order:
    /// `x[p₁…pₙ][p₁…p_{n−1}] = x[p₁…p_{n−1}][pₙ, p₁…p_{n−1}]`.
    #[must_use]
    pub fn diamond_identity_holds(
        &self,
        x: &MpState<P::LocalState, P::Msg>,
        order: &[Pid],
    ) -> bool {
        assert_eq!(order.len(), self.n, "diamond needs a full order");
        let dropped: Vec<Pid> = order[..self.n - 1].to_vec();
        let last = order[self.n - 1];
        let mut rotated = vec![last];
        rotated.extend_from_slice(&dropped);

        let left = self.apply(
            &self.apply(x, &MpAction::Sequential(order.to_vec())),
            &MpAction::Sequential(dropped.clone()),
        );
        let right = self.apply(
            &self.apply(x, &MpAction::Sequential(dropped)),
            &MpAction::Sequential(rotated),
        );
        left == right
    }
}

fn assert_distinct(order: &[Pid]) {
    let mut seen = HashSet::new();
    for &p in order {
        assert!(seen.insert(p), "processes in an action must be distinct");
    }
}

/// Builds the packed codec for an `n ≤ 8` process message-passing model,
/// if the protocol packs both its local states and its messages. Mailboxes
/// make the layout variable-width, so the codec streams fields through a
/// [`WordWriter`], low bits first: 8 round bits, then per process `2`
/// input bits, [`DECISION_BITS`] decision bits, 4 phases-done bits, the
/// local codec, a 3-bit mailbox length (longer mailboxes spill) and per
/// undelivered message a 3-bit sender pid plus the message codec. No
/// word-level renaming shuffle is provided — relocating variable-width
/// sections is not a bit shuffle — so quotient canonicalization keeps the
/// brute-force rule and packing is storage-only here.
fn build_packer<P: MpProtocol>(
    n: usize,
    protocol: &P,
) -> Option<StatePacker<MpState<P::LocalState, P::Msg>>> {
    let lp = protocol.local_packer()?;
    let mp = protocol.msg_packer()?;
    if n > 8 {
        return None;
    }
    let pack = {
        let lp = lp.clone();
        let mp = mp.clone();
        move |x: &MpState<P::LocalState, P::Msg>| {
            if x.locals.len() != n {
                return None;
            }
            let mut w = WordWriter::new().push(u64::from(x.round), 8)?;
            for i in 0..n {
                w = w
                    .push(u64::from(x.inputs[i].get()), 2)?
                    .push(pack_decision(x.decided[i])?, DECISION_BITS)?
                    .push(u64::from(x.phases_done[i]), 4)?
                    .push(lp.pack(&x.locals[i])?, lp.bits())?
                    .push(u64::try_from(x.mailboxes[i].len()).ok()?, 3)?;
                for (from, msg) in &x.mailboxes[i] {
                    w = w
                        .push(u64::try_from(from.index()).ok()?, 3)?
                        .push(mp.pack(msg)?, mp.bits())?;
                }
            }
            Some(w.finish())
        }
    };
    let unpack = move |word: u128| {
        let mut r = WordReader::new(word);
        let round = r.take(8) as u16;
        let mut inputs = Vec::with_capacity(n);
        let mut locals = Vec::with_capacity(n);
        let mut decided = Vec::with_capacity(n);
        let mut phases_done = Vec::with_capacity(n);
        let mut mailboxes = Vec::with_capacity(n);
        for _ in 0..n {
            inputs.push(Value::new(r.take(2) as u32));
            decided.push(unpack_decision(r.take(DECISION_BITS)));
            phases_done.push(r.take(4) as u16);
            locals.push(lp.unpack(r.take(lp.bits())));
            let len = r.take(3) as usize;
            let mut mailbox = Vec::with_capacity(len);
            for _ in 0..len {
                let from = Pid::new(r.take(3) as usize);
                mailbox.push((from, mp.unpack(r.take(mp.bits()))));
            }
            mailboxes.push(mailbox);
        }
        MpState {
            round,
            inputs,
            locals,
            decided,
            phases_done,
            mailboxes,
        }
    };
    Some(StatePacker::new(pack, unpack))
}

impl<P: MpProtocol> LayeredModel for MpModel<P> {
    type State = MpState<P::LocalState, P::Msg>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        MpState {
            round: 0,
            inputs: inputs.to_vec(),
            locals,
            decided,
            phases_done: vec![0; self.n],
            mailboxes: vec![Vec::new(); self.n],
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        self.layer(x)
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.round)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, _x: &Self::State, _i: Pid) -> bool {
        // No finite failure: a skipped process can always resume.
        false
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        // Mailboxes are receiver-attributed: mailbox[i] is part of i's
        // extended local state (see `MpState` docs).
        x.round == y.round
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i]
                        && x.phases_done[i] == y.phases_done[i]
                        && x.mailboxes[i] == y.mailboxes[i])
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        let order: Vec<Pid> = Pid::all(self.n).filter(|&p| p != j).collect();
        self.apply(x, &MpAction::Sequential(order))
    }

    fn state_packer(&self) -> Option<StatePacker<Self::State>> {
        self.packer.clone()
    }

    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        match self.obligation {
            Some(r) => Pid::all(self.n)
                .filter(|i| x.phases_done[i.index()] >= r)
                .collect(),
            None => x.always_proper().collect(),
        }
    }
}

// Renaming relocates the per-process vectors, moves each mailbox to its
// renamed receiver, and relabels sender tags inside it (re-sorted to keep
// the sender-sorted canonical mailbox order). Unlike the other models,
// `S^per` itself is equivariant: its action alphabet — all permutations,
// all drop-last arrangements, all concurrent adjacent pairs — is closed
// under renaming, so `symmetric_layering` is unconditionally true and the
// quotient engine applies to the paper's own layering.
impl<P> Symmetric for MpModel<P>
where
    P: MpProtocol + Anonymous,
    P::LocalState: Ord,
    P::Msg: Ord,
{
    fn permute_state(&self, x: &Self::State, perm: &PidPerm) -> Self::State {
        let mailboxes = perm
            .permute_vec(&x.mailboxes)
            .into_iter()
            .map(|mailbox| {
                let mut mailbox: Vec<(Pid, P::Msg)> = mailbox
                    .into_iter()
                    .map(|(from, msg)| (perm.apply(from), msg))
                    .collect();
                mailbox.sort_by_key(|&(from, _)| from);
                mailbox
            })
            .collect();
        MpState {
            round: x.round,
            inputs: perm.permute_vec(&x.inputs),
            locals: perm.permute_vec(&x.locals),
            decided: perm.permute_vec(&x.decided),
            phases_done: perm.permute_vec(&x.phases_done),
            mailboxes,
        }
    }

    fn symmetric_layering(&self) -> bool {
        true
    }

    fn canonicalize(&self, x: &Self::State) -> (Self::State, PidPerm) {
        canonicalize_by_min(self, x)
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{
        check_crash_display, check_fault_independence, check_graded, valence_report, LayeredModel,
        ValenceSolver,
    };
    use layered_protocols::{MpCollectMin, MpFloodMin};

    use super::*;
    use crate::perm::permutations;

    fn model(n: usize, phases: u16) -> MpModel<MpFloodMin> {
        MpModel::new(n, MpFloodMin::new(phases))
    }

    #[test]
    fn initial_states_form_con0() {
        let m = model(3, 2);
        let inits = m.initial_states();
        assert_eq!(inits.len(), 8);
        assert!(inits.iter().all(|x| x.in_transit() == 0));
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 2);
        assert_eq!(check_graded(&m, 1), None);
        assert_eq!(check_fault_independence(&m, 1), None);
        assert_eq!(check_crash_display(&m, 1), None);
    }

    #[test]
    fn action_count_matches_paper() {
        // n! full + n! drop-last + (n−1)·n! concurrent.
        let m = model(3, 2);
        assert_eq!(m.actions().len(), 6 + 6 + 2 * 6);
    }

    #[test]
    fn full_action_behaves_like_a_round() {
        // After x[p1,p2,p3], later processes saw earlier fresh messages.
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let order: Vec<Pid> = Pid::all(3).collect();
        let y = m.apply(&x, &MpAction::Sequential(order));
        // p1 sent its 0 before p2 and p3 received: both decide 0.
        assert_eq!(y.decided[1], Some(Value::ZERO));
        assert_eq!(y.decided[2], Some(Value::ZERO));
        // p1 received nothing fresh (it acted first): decides its own 0.
        assert_eq!(y.decided[0], Some(Value::ZERO));
    }

    #[test]
    fn drop_last_skips_a_process() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        // p1 (holding 0) is dropped: the others decide 1.
        let y = m.apply(&x, &MpAction::Sequential(vec![Pid::new(1), Pid::new(2)]));
        assert_eq!(y.decided[0], None);
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[2], Some(Value::ONE));
        assert_eq!(y.phases_done, vec![0, 1, 1]);
        // p1's input is unknown to the others; messages TO p1 are pending.
        assert!(y.mailboxes[0].len() == 2);
    }

    #[test]
    fn concurrent_pair_sees_each_other() {
        let m = model(2, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE]);
        let order: Vec<Pid> = Pid::all(2).collect();
        // Sequential [p1, p2]: p1 receives nothing, p2 sees p1's 0.
        let seq = m.apply(&x, &MpAction::Sequential(order.clone()));
        assert_eq!(seq.decided[0], Some(Value::ZERO));
        assert_eq!(seq.decided[1], Some(Value::ZERO));
        // Concurrent {p1, p2}: both send first, so both see each other.
        let conc = m.apply(&x, &MpAction::Concurrent { order, at: 0 });
        assert_eq!(conc.decided[0], Some(Value::ZERO));
        assert_eq!(conc.decided[1], Some(Value::ZERO));
        // In seq, p1 never saw p2's 1.
        assert_ne!(seq.locals[0], conc.locals[0]);
        assert_eq!(seq.locals[1], conc.locals[1]);
    }

    #[test]
    fn transposition_bridges_hold_everywhere() {
        // The Section 5.1 similarity chain, checked exhaustively at depth 0
        // and for a sample state at depth 1.
        let m = model(3, 3);
        for x in m.initial_states() {
            for order in permutations(3) {
                for at in 0..2 {
                    let (a, b) = m.transposition_bridges(&x, &order, at);
                    assert!(a && b, "bridge failed at {order:?}/{at} from {x:?}");
                }
            }
        }
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let x1 = m.apply(&x, &MpAction::Sequential(vec![Pid::new(2), Pid::new(0)]));
        for order in permutations(3) {
            for at in 0..2 {
                let (a, b) = m.transposition_bridges(&x1, &order, at);
                assert!(a && b);
            }
        }
    }

    #[test]
    fn diamond_identity_holds_everywhere() {
        let m = model(3, 3);
        for x in m.initial_states().into_iter().take(4) {
            for order in permutations(3) {
                assert!(
                    m.diamond_identity_holds(&x, &order),
                    "diamond failed for {order:?}"
                );
            }
        }
    }

    #[test]
    fn full_and_drop_last_are_not_similar() {
        // The paper's footnote: x[p1..pn] and x[p1..p_{n-1}] do NOT agree
        // modulo p_n — p_n's messages sit in other processes' mailboxes.
        let m = model(3, 3);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let order: Vec<Pid> = Pid::all(3).collect();
        let full = m.apply(&x, &MpAction::Sequential(order.clone()));
        let dropped = m.apply(&x, &MpAction::Sequential(order[..2].to_vec()));
        assert!(!m.agree_modulo(&full, &dropped, Pid::new(2)));
    }

    #[test]
    fn layer_is_valence_connected() {
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let mut solver = ValenceSolver::new(&m, 2);
        let layer = m.layer(&x);
        let rep = valence_report(&m, &mut solver, &layer);
        assert!(rep.connected, "S^per(x) must be valence connected");
    }

    #[test]
    fn collect_quorum_n_never_decides_under_drops() {
        // MpCollectMin with quorum n: repeatedly dropping p1 leaves everyone
        // else unable to decide — the Decision face of FLP.
        let m = MpModel::new(3, MpCollectMin::new(3)).with_obligation(2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let drop_p1 = MpAction::Sequential(vec![Pid::new(1), Pid::new(2)]);
        let y = m.apply(&m.apply(&x, &drop_p1), &drop_p1);
        assert!(y.decided.iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_process_in_action_rejected() {
        let m = model(2, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ZERO]);
        let _ = m.apply(&x, &MpAction::Sequential(vec![Pid::new(0), Pid::new(0)]));
    }
}
