//! Symmetry-reduction soundness for the message-passing model: the
//! permutation layering `S^per` is itself equivariant (its action alphabet
//! is closed under renaming), so the quotient engine applies to the
//! paper's own layering with no variant switch.

use std::collections::HashSet;

use layered_async_mp::{MpAction, MpModel};
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_quotient,
    ImpossibilityWitness, LayeredModel, Pid, PidPerm, QuotientSolver, Symmetric, ValenceSolver,
    Value,
};
use layered_protocols::MpFloodMin;

fn model(n: usize, phases: u16) -> MpModel<MpFloodMin> {
    MpModel::new(n, MpFloodMin::new(phases))
}

#[test]
fn s_per_is_always_symmetric() {
    assert!(model(3, 2).symmetric_layering());
}

#[test]
fn s_per_is_equivariant() {
    let m = model(3, 2);
    for x in m.initial_states() {
        let layer: Vec<_> = m.successors(&x);
        for pi in PidPerm::all(3) {
            let renamed_layer: HashSet<_> = m
                .successors(&m.permute_state(&x, &pi))
                .into_iter()
                .collect();
            let layer_renamed: HashSet<_> = layer.iter().map(|y| m.permute_state(y, &pi)).collect();
            assert_eq!(renamed_layer, layer_renamed, "not equivariant under {pi:?}");
        }
    }
}

#[test]
fn permutation_relocates_mailboxes_and_relabels_senders() {
    let m = model(3, 2);
    let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
    // Drop p2: p0 and p1 take phases. p2's mailbox holds both their
    // messages; p0's holds p1's (sent after p0 already received).
    let y = m.apply(&x, &MpAction::Sequential(vec![Pid::new(0), Pid::new(1)]));
    assert_eq!(y.mailboxes[2].len(), 2);
    assert_eq!(y.mailboxes[0].len(), 1);
    // Swap p0 and p2: the mailboxes trade places, senders relabeled.
    let pi = PidPerm::from_map(vec![2, 1, 0]);
    let z = m.permute_state(&y, &pi);
    assert_eq!(z.mailboxes[0].len(), 2);
    assert_eq!(z.mailboxes[2].len(), 1);
    let senders: Vec<Pid> = z.mailboxes[0].iter().map(|&(from, _)| from).collect();
    assert_eq!(
        senders,
        vec![Pid::new(1), Pid::new(2)],
        "sender-sorted after relabel"
    );
}

#[test]
fn valence_flags_are_orbit_invariant() {
    let m = model(3, 1);
    let mut solver = ValenceSolver::new(&m, 1);
    for x in m.initial_states() {
        let flags = solver.valences(&x);
        let (rep, _) = m.canonicalize(&x);
        assert_eq!(flags, solver.valences(&rep));
        for pi in PidPerm::all(3) {
            assert_eq!(flags, solver.valences(&m.permute_state(&x, &pi)));
        }
    }
}

#[test]
fn quotient_and_full_scans_agree_at_n2() {
    let m = model(2, 2);
    let mut full_solver = ValenceSolver::new(&m, 2);
    let full = scan_layer_valence_connectivity(&mut full_solver, 1, true);
    let mut quot_solver = QuotientSolver::new(&m, 2);
    let quot = scan_layer_valence_connectivity_quotient(&mut quot_solver, 1, true);
    assert_eq!(full.violation.is_none(), quot.violation.is_none());
    assert!(quot.states_seen <= full.states_seen);
}

#[test]
fn dequotiented_witness_verifies() {
    // FLP via S^per: a bivalent run exists; the quotient-built witness must
    // replay as a genuine execution of the model. (Deadline 2 keeps the
    // chain undecided — at deadline 1 agreement is already broken in the
    // first layer and `verify` correctly reports `TooFewUndecided`.)
    let m = model(2, 2);
    let w = ImpossibilityWitness::build_quotient(&m, 2, 1)
        .expect("a bivalent run exists in the asynchronous model");
    assert!(w.verify(&m).is_ok(), "de-quotiented witness must re-verify");
}
