//! Property tests for the permutation layering: the Section 5.1 structural
//! identities must hold at arbitrary reachable states and orders.

use proptest::prelude::*;

use layered_async_mp::{MpAction, MpModel, MpState};
use layered_core::{LayeredModel, Pid, Value};

use layered_protocols::{MpFloodMin, MpProtocol};

type State = MpState<<MpFloodMin as MpProtocol>::LocalState, <MpFloodMin as MpProtocol>::Msg>;

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

/// A random permutation of `0..n` via sorting random keys.
fn arb_perm(n: usize) -> impl Strategy<Value = Vec<Pid>> {
    proptest::collection::vec(0u64..1_000_000, n).prop_map(move |keys| {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (keys[i], i));
        idx.into_iter().map(Pid::new).collect()
    })
}

fn arb_action(n: usize) -> impl Strategy<Value = MpAction> {
    (arb_perm(n), 0..(2 * n)).prop_map(move |(perm, sel)| {
        if sel < n - 1 {
            MpAction::Concurrent {
                order: perm,
                at: sel,
            }
        } else if sel == n - 1 {
            let mut p = perm;
            p.pop();
            MpAction::Sequential(p)
        } else {
            MpAction::Sequential(perm)
        }
    })
}

fn walk(m: &MpModel<MpFloodMin>, inputs: &[Value], actions: &[MpAction]) -> Vec<State> {
    let mut states = vec![m.initial_state(inputs)];
    for a in actions {
        let next = m.apply(states.last().unwrap(), a);
        states.push(next);
    }
    states
}

proptest! {
    /// The packed codec round-trips every state of a random run, mailboxes
    /// and all; over-long mailboxes spill instead of corrupting the word.
    #[test]
    fn packed_codec_round_trips(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
    ) {
        let m = MpModel::new(3, MpFloodMin::new(2));
        let packer = m.state_packer().expect("MpFloodMin states pack");
        for x in walk(&m, &inputs, &actions) {
            match packer.pack(&x) {
                Some(w) => prop_assert_eq!(packer.unpack(w), x),
                // Variable-width codec: a crowded state may legitimately
                // overflow the word and spill.
                None => prop_assert!(x.in_transit() > 0 || x.round >= 256),
            }
        }
    }

    /// The transposition bridges hold at arbitrary reachable states, for
    /// arbitrary orders and positions.
    #[test]
    fn transposition_bridges_everywhere(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..2),
        order in arb_perm(3),
        at in 0usize..2,
    ) {
        let m = MpModel::new(3, MpFloodMin::new(8));
        let states = walk(&m, &inputs, &actions);
        let (a, b) = m.transposition_bridges(states.last().unwrap(), &order, at);
        prop_assert!(a, "seq ~s conc failed");
        prop_assert!(b, "conc ~s swapped failed");
    }

    /// The diamond identity holds at arbitrary reachable states for
    /// arbitrary full orders.
    #[test]
    fn diamond_everywhere(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..2),
        order in arb_perm(3),
    ) {
        let m = MpModel::new(3, MpFloodMin::new(8));
        let states = walk(&m, &inputs, &actions);
        prop_assert!(m.diamond_identity_holds(states.last().unwrap(), &order));
    }

    /// Run invariants: grading, write-once decisions, mailbox conservation
    /// (messages only enter mailboxes at sends and leave at receives).
    #[test]
    fn run_invariants(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 1..3),
    ) {
        let m = MpModel::new(3, MpFloodMin::new(2));
        let states = walk(&m, &inputs, &actions);
        for (d, w) in states.windows(2).enumerate() {
            prop_assert_eq!(m.depth(&w[1]), d + 1);
            for i in 0..3 {
                if let Some(v) = w[0].decided[i] {
                    prop_assert_eq!(w[1].decided[i], Some(v));
                }
            }
            // Mailboxes stay sender-sorted (canonical form).
            for mb in &w[1].mailboxes {
                let senders: Vec<Pid> = mb.iter().map(|(p, _)| *p).collect();
                let mut sorted = senders.clone();
                sorted.sort();
                prop_assert_eq!(senders, sorted);
            }
        }
    }

    /// A full action leaves exactly the messages sent to earlier-ordered
    /// processes... precisely: everyone's mailbox is drained at their own
    /// phase, so only messages from later-ordered processes remain.
    #[test]
    fn full_action_mailbox_shape(inputs in arb_inputs(3), order in arb_perm(3)) {
        let m = MpModel::new(3, MpFloodMin::new(2));
        let x = m.initial_state(&inputs);
        let y = m.apply(&x, &MpAction::Sequential(order.clone()));
        for (pos, &p) in order.iter().enumerate() {
            // p's mailbox holds exactly one message per later-ordered process.
            prop_assert_eq!(y.mailboxes[p.index()].len(), 2 - pos);
        }
    }
}
