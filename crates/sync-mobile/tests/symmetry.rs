//! Symmetry-reduction soundness for the mobile-failure model: the `Full`
//! layering is equivariant under process renaming, valence flags are
//! orbit-invariant, quotient and full scans agree, de-quotiented witnesses
//! re-verify, and the n = 4 quotient scan achieves the promised reduction.

use std::collections::HashSet;

use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_quotient,
    scan_layer_valence_connectivity_quotient_parallel, ImpossibilityWitness, LayeredModel, PidPerm,
    QuotientSolver, Symmetric, ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::{MobileLayering, MobileModel};

fn sym_model(n: usize, rounds: u16) -> MobileModel<FloodMin> {
    MobileModel::new(n, FloodMin::new(rounds)).with_layering(MobileLayering::Full)
}

#[test]
fn only_the_full_layering_is_symmetric() {
    assert!(!MobileModel::new(3, FloodMin::new(2)).symmetric_layering());
    assert!(sym_model(3, 2).symmetric_layering());
}

#[test]
fn full_layering_is_equivariant() {
    // S(π·x) = π·S(x) for every initial state and every renaming.
    let m = sym_model(3, 2);
    for x in m.initial_states() {
        let layer: Vec<_> = m.successors(&x);
        for pi in PidPerm::all(3) {
            let renamed_layer: HashSet<_> = m
                .successors(&m.permute_state(&x, &pi))
                .into_iter()
                .collect();
            let layer_renamed: HashSet<_> = layer.iter().map(|y| m.permute_state(y, &pi)).collect();
            assert_eq!(renamed_layer, layer_renamed, "not equivariant under {pi:?}");
        }
    }
}

#[test]
fn prefix_layering_is_not_equivariant() {
    // The counterexample that forces the symmetric-layering guard: S₁'s
    // prefix destination sets are not closed under renaming.
    let m = MobileModel::new(3, FloodMin::new(2));
    let violated = m.initial_states().iter().any(|x| {
        let layer: Vec<_> = m.successors(x);
        PidPerm::all(3).iter().any(|pi| {
            let renamed_layer: HashSet<_> =
                m.successors(&m.permute_state(x, pi)).into_iter().collect();
            let layer_renamed: HashSet<_> = layer.iter().map(|y| m.permute_state(y, pi)).collect();
            renamed_layer != layer_renamed
        })
    });
    assert!(violated, "S₁ unexpectedly equivariant — guard obsolete?");
}

#[test]
fn valence_flags_are_orbit_invariant() {
    let m = sym_model(3, 2);
    let mut solver = ValenceSolver::new(&m, 2);
    for x in m.initial_states() {
        let flags = solver.valences(&x);
        let (rep, _) = m.canonicalize(&x);
        assert_eq!(flags, solver.valences(&rep));
        for pi in PidPerm::all(3) {
            assert_eq!(flags, solver.valences(&m.permute_state(&x, &pi)));
        }
    }
}

#[test]
fn quotient_and_full_scans_agree_at_n3() {
    let m = sym_model(3, 2);
    let mut full_solver = ValenceSolver::new(&m, 2);
    let full = scan_layer_valence_connectivity(&mut full_solver, 1, true);
    let mut quot_solver = QuotientSolver::new(&m, 2);
    let quot = scan_layer_valence_connectivity_quotient(&mut quot_solver, 1, true);
    assert_eq!(full.violation.is_none(), quot.violation.is_none());
    assert!(quot.states_seen <= full.states_seen);
}

#[test]
fn quotient_scan_parallel_matches_sequential() {
    let m = sym_model(3, 2);
    let mut seq = QuotientSolver::new(&m, 2);
    let a = scan_layer_valence_connectivity_quotient(&mut seq, 1, true);
    let mut par = QuotientSolver::new(&m, 2);
    let b = scan_layer_valence_connectivity_quotient_parallel(&mut par, 1, true, 4);
    assert_eq!(a.layers_checked, b.layers_checked);
    assert_eq!(a.states_seen, b.states_seen);
    assert_eq!(a.violation.is_none(), b.violation.is_none());
}

#[test]
fn dequotiented_witness_verifies() {
    let m = sym_model(3, 2);
    let w = ImpossibilityWitness::build_quotient(&m, 2, 1)
        .expect("a bivalent run exists under a mobile failure");
    assert_eq!(w.len(), 1);
    assert!(w.verify(&m).is_ok(), "de-quotiented witness must re-verify");
}

#[test]
fn quotient_scan_reduces_states_3x_at_n4() {
    // The PR's acceptance bound: at n = 4 the quotient scan visits at least
    // 3× fewer states than the full scan, with the same lemma verdict.
    let m = sym_model(4, 2);
    let mut full_solver = ValenceSolver::new(&m, 2);
    let full = scan_layer_valence_connectivity(&mut full_solver, 1, true);
    let mut quot_solver = QuotientSolver::new(&m, 2);
    let quot = scan_layer_valence_connectivity_quotient(&mut quot_solver, 1, true);
    assert_eq!(full.violation.is_none(), quot.violation.is_none());
    assert!(
        full.states_seen >= 3 * quot.states_seen,
        "expected >= 3x reduction: full={} quotient={}",
        full.states_seen,
        quot.states_seen
    );
}
