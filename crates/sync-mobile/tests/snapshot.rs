//! Snapshot round-trips for the mobile-failure model, and the resume
//! acceptance case: an n = 4 scan *extended* from a reloaded snapshot is
//! bit-identical to a cold scan at the deeper depth — on the sequential
//! and the parallel expansion path, for both arena kinds.

use layered_core::{
    load_quotient, load_space, save_quotient, save_space, scan_layer_valence_connectivity,
    scan_layer_valence_connectivity_parallel, scan_layer_valence_connectivity_quotient,
    scan_layer_valence_connectivity_quotient_parallel, ArenaMeta, LayeredModel, NoopObserver,
    QuotientSolver, QuotientSpace, StateSpace, ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::{MobileLayering, MobileModel, MODEL_KEY};

const NOOP: NoopObserver = NoopObserver;

fn meta(n: usize, horizon: usize, depth: usize, layering: &str) -> ArenaMeta {
    ArenaMeta {
        model: MODEL_KEY.to_string(),
        protocol: "floodmin".to_string(),
        n: n as u64,
        horizon: horizon as u64,
        depth: depth as u64,
        layering: layering.to_string(),
    }
}

/// FloodMin states (with their known-sets) survive the snapshot codec:
/// the reloaded interned arena is state-for-state identical.
#[test]
fn interned_arena_roundtrips_at_n3() {
    let m = MobileModel::new(3, FloodMin::new(3));
    let roots = m.initial_states();
    let mut space: StateSpace<MobileModel<FloodMin>> = StateSpace::new();
    let levels = space.expand_layers(&m, &roots, 2, &NOOP);
    let (bytes, _) = save_space(&space, &meta(3, 3, 2, "s1"), &NOOP);
    let (loaded, _, _) = load_space(&m, &bytes, &NOOP).expect("pristine blob loads");
    assert_eq!(loaded.len(), space.len());
    assert_eq!(loaded.edge_count(), space.edge_count());
    for id in levels.iter().flatten().copied() {
        assert_eq!(loaded.resolve(id), space.resolve(id));
        assert_eq!(loaded.cached_successors(id), space.cached_successors(id));
    }
    let (again, _) = save_space(&loaded, &meta(3, 3, 2, "s1"), &NOOP);
    assert_eq!(again, bytes, "re-save is not byte-identical");
}

/// The quotient arena round-trips too, orbit sizes and recovery
/// permutations included.
#[test]
fn quotient_arena_roundtrips_at_n3() {
    let m = MobileModel::new(3, FloodMin::new(3)).with_layering(MobileLayering::Full);
    let roots = m.initial_states();
    let mut space = QuotientSpace::new(&m);
    let levels = space.expand_layers(&m, &roots, 2, &NOOP);
    let (bytes, _) = save_quotient(&space, &meta(3, 3, 2, "full"), &NOOP);
    let (loaded, _, _) = load_quotient(&m, &bytes, &NOOP).expect("pristine blob loads");
    assert_eq!(loaded.len(), space.len());
    assert_eq!(loaded.edge_count(), space.edge_count());
    assert_eq!(loaded.covered_states(), space.covered_states());
    for id in levels.iter().flatten().copied() {
        assert_eq!(loaded.resolve(id), space.resolve(id));
        assert_eq!(loaded.orbit_size_of(id), space.orbit_size_of(id));
        assert_eq!(
            loaded.cached_successors_with_perms(id),
            space.cached_successors_with_perms(id)
        );
    }
    let (again, _) = save_quotient(&loaded, &meta(3, 3, 2, "full"), &NOOP);
    assert_eq!(again, bytes, "re-save is not byte-identical");
}

/// The interned acceptance case at n = 4: scan at depth 1, snapshot,
/// reload, extend to depth 2 — the extended verdict must be bit-identical
/// to a cold depth-2 scan, sequentially and in parallel.
#[test]
fn resumed_interned_scan_is_bit_identical_at_n4() {
    let horizon = 3; // room to deepen without moving the deadline
    let m = MobileModel::new(4, FloodMin::new(horizon as u16));
    let mut cold = ValenceSolver::with_observer(&m, horizon, &NOOP);
    scan_layer_valence_connectivity(&mut cold, 1, true);
    let (bytes, _) = save_space(cold.space(), &meta(4, horizon, 1, "s1"), &NOOP);

    let mut deep_seq = ValenceSolver::with_observer(&m, horizon, &NOOP);
    let cold_seq = scan_layer_valence_connectivity(&mut deep_seq, 2, true);
    let mut deep_par = ValenceSolver::with_observer(&m, horizon, &NOOP);
    let cold_par = scan_layer_valence_connectivity_parallel(&mut deep_par, 2, true, 4);
    assert_eq!(cold_seq, cold_par, "seq/par cold scans disagree");

    for threads in [0, 4] {
        let (space, _, _) = load_space(&m, &bytes, &NOOP).expect("snapshot reloads");
        let mut resumed = ValenceSolver::with_space(&m, horizon, space, &NOOP);
        let scan = if threads == 0 {
            scan_layer_valence_connectivity(&mut resumed, 2, true)
        } else {
            scan_layer_valence_connectivity_parallel(&mut resumed, 2, true, threads)
        };
        assert_eq!(scan, cold_seq, "resumed scan (threads={threads}) diverged");
    }
}

/// The quotient acceptance case at n = 4: same shape through the
/// symmetry-reduced arena.
#[test]
fn resumed_quotient_scan_is_bit_identical_at_n4() {
    let horizon = 3;
    let m = MobileModel::new(4, FloodMin::new(horizon as u16)).with_layering(MobileLayering::Full);
    let mut cold = QuotientSolver::with_observer(&m, horizon, &NOOP);
    scan_layer_valence_connectivity_quotient(&mut cold, 1, true);
    let (bytes, _) = save_quotient(cold.space(), &meta(4, horizon, 1, "full"), &NOOP);

    let mut deep_seq = QuotientSolver::with_observer(&m, horizon, &NOOP);
    let cold_seq = scan_layer_valence_connectivity_quotient(&mut deep_seq, 2, true);
    let mut deep_par = QuotientSolver::with_observer(&m, horizon, &NOOP);
    let cold_par = scan_layer_valence_connectivity_quotient_parallel(&mut deep_par, 2, true, 4);
    assert_eq!(cold_seq, cold_par, "seq/par cold scans disagree");

    for threads in [0, 4] {
        let (space, _, _) = load_quotient(&m, &bytes, &NOOP).expect("snapshot reloads");
        let mut resumed = QuotientSolver::with_space(&m, horizon, space, &NOOP);
        let scan = if threads == 0 {
            scan_layer_valence_connectivity_quotient(&mut resumed, 2, true)
        } else {
            scan_layer_valence_connectivity_quotient_parallel(&mut resumed, 2, true, threads)
        };
        assert_eq!(scan, cold_seq, "resumed scan (threads={threads}) diverged");
    }
}

/// Differential refresh after a deadline move: rows far from the deadline
/// are reused, rows adjacent to it are recomputed, and the refreshed
/// arena's scan matches a cold scan under the new protocol.
#[test]
fn differential_refresh_matches_cold_scan_after_deadline_move() {
    let m1 = MobileModel::new(3, FloodMin::new(2)).with_layering(MobileLayering::Full);
    let mut cold = QuotientSolver::with_observer(&m1, 2, &NOOP);
    scan_layer_valence_connectivity_quotient(&mut cold, 1, true);
    let (bytes, _) = save_quotient(cold.space(), &meta(3, 2, 1, "full"), &NOOP);

    let m2 = MobileModel::new(3, FloodMin::new(3)).with_layering(MobileLayering::Full);
    let mut cold2 = QuotientSolver::with_observer(&m2, 3, &NOOP);
    let want = scan_layer_valence_connectivity_quotient(&mut cold2, 1, true);

    let (mut space, _, _) = load_quotient(&m2, &bytes, &NOOP).expect("snapshot reloads");
    let diff = space.refresh_differential(&m2, &NOOP);
    assert!(diff.reused > 0, "no rows reused: {diff:?}");
    assert!(diff.recomputed > 0, "no rows recomputed: {diff:?}");
    let mut resumed = QuotientSolver::with_space(&m2, 3, space, &NOOP);
    let got = scan_layer_valence_connectivity_quotient(&mut resumed, 1, true);
    assert_eq!(got, want, "refreshed scan diverged from cold scan");
}
