//! Property tests for the mobile-failure model: invariants along random
//! action sequences.

use proptest::prelude::*;

use layered_core::{orbit_size, LayeredModel, Pid, PidPerm, Symmetric, Value};
use layered_protocols::{FloodMin, SyncProtocol};
use layered_sync_mobile::{MobileLayering, MobileModel, MobileState};

type State = MobileState<<FloodMin as SyncProtocol>::LocalState>;

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

/// A random `(j, lost_prefix)` action.
fn arb_action(n: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..n, 0..=n)
}

fn walk(m: &MobileModel<FloodMin>, inputs: &[Value], actions: &[(usize, usize)]) -> Vec<State> {
    let mut states = vec![m.initial_state(inputs)];
    for &(j, k) in actions {
        let prefix: Vec<Pid> = Pid::all(k).collect();
        let next = m.apply(states.last().unwrap(), Pid::new(j), &prefix);
        states.push(next);
    }
    states
}

proptest! {
    /// Depth is graded, decisions are write-once, and local knowledge only
    /// grows along arbitrary runs.
    #[test]
    fn run_invariants(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 1..4),
    ) {
        let m = MobileModel::new(3, FloodMin::new(2));
        let states = walk(&m, &inputs, &actions);
        for (d, w) in states.windows(2).enumerate() {
            prop_assert_eq!(m.depth(&w[0]), d);
            prop_assert_eq!(m.depth(&w[1]), d + 1);
            for i in 0..3 {
                // Write-once decisions.
                if let Some(v) = w[0].decided[i] {
                    prop_assert_eq!(w[1].decided[i], Some(v));
                }
                // FloodMin knowledge is monotone.
                prop_assert!(w[0].locals[i].known.is_subset(&w[1].locals[i].known));
                // Validity of knowledge: everything known is someone's input.
                prop_assert!(w[1].locals[i].known.iter().all(|v| inputs.contains(v)));
            }
        }
    }

    /// Every S₁ successor is also a full-model successor at every state of
    /// a random run (Lemma 5.1(i) along runs).
    #[test]
    fn s1_is_sublayer_along_runs(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
    ) {
        let m = MobileModel::new(3, FloodMin::new(3));
        let states = walk(&m, &inputs, &actions);
        prop_assert!(m.s1_is_sublayer_at(states.last().unwrap()));
    }

    /// agree_modulo is reflexive and symmetric on reachable states.
    #[test]
    fn agree_modulo_is_reflexive_and_symmetric(
        inputs in arb_inputs(3),
        a in arb_action(3),
        b in arb_action(3),
        j in 0usize..3,
    ) {
        let m = MobileModel::new(3, FloodMin::new(2));
        let x0 = m.initial_state(&inputs);
        let x = m.apply(&x0, Pid::new(a.0), &Pid::all(a.1).collect::<Vec<_>>());
        let y = m.apply(&x0, Pid::new(b.0), &Pid::all(b.1).collect::<Vec<_>>());
        let j = Pid::new(j);
        prop_assert!(m.agree_modulo(&x, &x, j));
        prop_assert_eq!(m.agree_modulo(&x, &y, j), m.agree_modulo(&y, &x, j));
    }

    /// The packed codec round-trips every state of a random run, and the
    /// word-level renaming shuffle commutes with `permute_state`.
    #[test]
    fn packed_codec_round_trips_and_commutes(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
        perm_ix in 0usize..6,
    ) {
        let m = MobileModel::new(3, FloodMin::new(2));
        let packer = m.state_packer().expect("FloodMin mobile states pack");
        let perm = &PidPerm::all(3)[perm_ix];
        for x in walk(&m, &inputs, &actions) {
            let w = packer.pack(&x).expect("reachable states pack");
            prop_assert_eq!(packer.unpack(w), x.clone());
            let shuffled = packer.permute_word(w, perm).expect("shuffle present");
            prop_assert_eq!(
                packer.unpack(shuffled),
                m.permute_state(&x, perm),
                "word shuffle must match the state-level renaming"
            );
        }
    }

    /// The packed canonicalization agrees with the brute-force one: same
    /// orbit size, a valid transport witness, and an orbit-invariant rep.
    #[test]
    fn packed_canonicalization_is_orbit_consistent(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..2),
        perm_ix in 0usize..6,
    ) {
        let m = MobileModel::new(3, FloodMin::new(2)).with_layering(MobileLayering::Full);
        let x = walk(&m, &inputs, &actions).pop().unwrap();
        let (rep, pi, orbit) = m.canonicalize_with_orbit(&x);
        prop_assert_eq!(&m.permute_state(&x, &pi), &rep);
        prop_assert_eq!(orbit, orbit_size(&m, &x) as u64);
        // Every orbit member canonicalizes to the same representative.
        let y = m.permute_state(&x, &PidPerm::all(3)[perm_ix]);
        let (rep_y, pi_y) = m.canonicalize(&y);
        prop_assert_eq!(&rep_y, &rep);
        prop_assert_eq!(&m.permute_state(&y, &pi_y), &rep);
    }

    /// The clean action (no losses) is independent of the chosen j, at any
    /// reachable state.
    #[test]
    fn clean_action_independent_of_j(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
        j1 in 0usize..3,
        j2 in 0usize..3,
    ) {
        let m = MobileModel::new(3, FloodMin::new(4));
        let states = walk(&m, &inputs, &actions);
        let x = states.last().unwrap();
        let a = m.apply(x, Pid::new(j1), &[]);
        let b = m.apply(x, Pid::new(j2), &[]);
        prop_assert_eq!(a, b);
    }
}
