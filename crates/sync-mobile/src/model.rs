//! The single-mobile-failure synchronous model `M^mf` and its layering `S₁`
//! (Section 5 of the paper).
//!
//! The model is the standard synchronous round model, except that in every
//! round the environment may pick one process `j` and a destination set `G`
//! and lose all of `j`'s messages to `G` — the *mobile* omission failure of
//! Santoro and Widmayer. The environment action at a state is the pair
//! `(j, G)`.
//!
//! The layering `S₁` restricts the environment to prefix destination sets:
//! `S₁(x) = { x(j, [k]) : 1 ≤ j ≤ n, 0 ≤ k ≤ n }` where `[k] = {1, …, k}`.
//! Lemma 5.1 shows `S₁` is a layering of `M^mf`, displays an arbitrary
//! crash failure, and has valence-connected layers — from which
//! Corollary 5.2 (consensus is unsolvable with a single mobile failure)
//! follows by Theorem 4.2. Every part of that argument is executable here.

use std::collections::HashSet;

use layered_core::{
    canonicalize_by_min, canonicalize_packed, orbit_size, pack_decision, unpack_decision,
    LayeredModel, Pid, PidPerm, StatePacker, Symmetric, Value, DECISION_BITS,
};
use layered_protocols::{Anonymous, SyncProtocol};

use crate::state::MobileState;

/// Which successor function the model exposes through
/// [`LayeredModel::successors`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MobileLayering {
    /// The paper's `S₁`: one process may lose its messages to a prefix
    /// `[k]` of the processes.
    #[default]
    S1,
    /// The full `M^mf` environment: one process may lose its messages to an
    /// arbitrary subset `G`. (Exponential branching; used to validate that
    /// `S₁`-layers are genuine `M^mf` rounds.)
    Full,
}

/// The mobile-failure synchronous model, parameterized by a deterministic
/// round protocol.
///
/// # Examples
///
/// ```
/// use layered_core::{check_consensus, LayeredModel};
/// use layered_protocols::FloodMin;
/// use layered_sync_mobile::MobileModel;
///
/// let m = MobileModel::new(3, FloodMin::new(2));
/// // Corollary 5.2: no protocol solves consensus here — the checker finds
/// // a violation for FloodMin with deadline 2.
/// let report = check_consensus(&m, 2, 1);
/// assert!(!report.passed());
/// ```
#[derive(Clone, Debug)]
pub struct MobileModel<P: SyncProtocol> {
    n: usize,
    protocol: P,
    layering: MobileLayering,
    packer: Option<StatePacker<MobileState<P::LocalState>>>,
    perms: Vec<PidPerm>,
}

impl<P: SyncProtocol> MobileModel<P> {
    /// A model with `n` processes under the `S₁` layering.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, protocol: P) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        let packer = build_packer(n, &protocol);
        let perms = if packer.is_some() && n <= 8 {
            PidPerm::all(n)
        } else {
            Vec::new()
        };
        MobileModel {
            n,
            protocol,
            layering: MobileLayering::S1,
            packer,
            perms,
        }
    }

    /// Selects the successor function exposed by [`LayeredModel`].
    #[must_use]
    pub fn with_layering(mut self, layering: MobileLayering) -> Self {
        self.layering = layering;
        self
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Applies the environment action `(j, G)`: runs one synchronous round
    /// in which all messages from `j` to processes in `lost_to` are lost.
    ///
    /// Self-delivery is never lost (a process always knows its own message).
    #[must_use]
    pub fn apply(
        &self,
        x: &MobileState<P::LocalState>,
        j: Pid,
        lost_to: &[Pid],
    ) -> MobileState<P::LocalState> {
        let n = self.n;
        let lost: HashSet<usize> = lost_to.iter().map(|p| p.index()).collect();
        let mut next_locals = Vec::with_capacity(n);
        let mut next_decided = x.decided.clone();
        #[allow(clippy::needless_range_loop)] // `to` doubles as message index
        for to in 0..n {
            let received: Vec<Option<P::Msg>> = (0..n)
                .map(|from| {
                    let msg = self.protocol.message(&x.locals[from], Pid::new(to));
                    let is_lost = from == j.index() && from != to && lost.contains(&to);
                    (!is_lost).then_some(msg)
                })
                .collect();
            let ls = self
                .protocol
                .transition(x.locals[to].clone(), Pid::new(to), &received);
            if next_decided[to].is_none() {
                next_decided[to] = self.protocol.decide(&ls);
            }
            next_locals.push(ls);
        }
        MobileState {
            round: x.round + 1,
            inputs: x.inputs.clone(),
            locals: next_locals,
            decided: next_decided,
        }
    }

    /// The `S₁` layer of `x`: `{ x(j, [k]) }` with prefix destination sets,
    /// deduplicated.
    #[must_use]
    pub fn s1_layer(&self, x: &MobileState<P::LocalState>) -> Vec<MobileState<P::LocalState>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        // k = 0 is independent of j (no message lost): emit once.
        let clean = self.apply(x, Pid::new(0), &[]);
        seen.insert(clean.clone());
        out.push(clean);
        for j in Pid::all(self.n) {
            for k in 1..=self.n {
                let prefix: Vec<Pid> = Pid::all(k).collect();
                let y = self.apply(x, j, &prefix);
                if seen.insert(y.clone()) {
                    out.push(y);
                }
            }
        }
        out
    }

    /// The full `M^mf` layer of `x`: `{ x(j, G) }` over all subsets `G`,
    /// deduplicated.
    #[must_use]
    pub fn full_layer(&self, x: &MobileState<P::LocalState>) -> Vec<MobileState<P::LocalState>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for j in Pid::all(self.n) {
            for mask in 0..(1usize << self.n) {
                let lost: Vec<Pid> = Pid::all(self.n)
                    .filter(|p| (mask >> p.index()) & 1 == 1)
                    .collect();
                let y = self.apply(x, j, &lost);
                if seen.insert(y.clone()) {
                    out.push(y);
                }
            }
        }
        out
    }

    /// Checks that `S₁` is a layering of `M^mf` at `x`: every `S₁` successor
    /// is an `M^mf` successor (here layers are single rounds, so the
    /// monotone embedding of the layering definition is the identity).
    #[must_use]
    pub fn s1_is_sublayer_at(&self, x: &MobileState<P::LocalState>) -> bool {
        let full: HashSet<MobileState<P::LocalState>> = self.full_layer(x).into_iter().collect();
        self.s1_layer(x).iter().all(|y| full.contains(y))
    }
}

/// Builds the packed codec for an `n`-process mobile model, if the protocol
/// packs its local states and the lanes fit one word. Layout, low bits
/// first: `n` lanes of `2` input bits, [`DECISION_BITS`] decision bits and
/// the protocol's local codec, then 8 round bits on top.
fn build_packer<P: SyncProtocol>(
    n: usize,
    protocol: &P,
) -> Option<StatePacker<MobileState<P::LocalState>>> {
    let lp = protocol.local_packer()?;
    let lane = 2 + DECISION_BITS + lp.bits();
    let head = n as u32 * lane;
    if head + 8 > 127 {
        return None;
    }
    let pack = {
        let lp = lp.clone();
        move |x: &MobileState<P::LocalState>| {
            if x.locals.len() != n || x.round >= 1 << 8 {
                return None;
            }
            let mut w = u128::from(x.round) << head;
            for i in 0..n {
                let off = i as u32 * lane;
                let inp = u64::from(x.inputs[i].get());
                if inp >= 4 {
                    return None;
                }
                let dec = pack_decision(x.decided[i])?;
                let loc = lp.pack(&x.locals[i])?;
                w |= u128::from(inp) << off;
                w |= u128::from(dec) << (off + 2);
                w |= u128::from(loc) << (off + 2 + DECISION_BITS);
            }
            Some(w)
        }
    };
    let unpack = move |w: u128| {
        let mut inputs = Vec::with_capacity(n);
        let mut decided = Vec::with_capacity(n);
        let mut locals = Vec::with_capacity(n);
        for i in 0..n {
            let off = i as u32 * lane;
            inputs.push(Value::new(((w >> off) & 0b11) as u32));
            decided.push(unpack_decision(
                ((w >> (off + 2)) as u64) & ((1 << DECISION_BITS) - 1),
            ));
            locals.push(lp.unpack(((w >> (off + 2 + DECISION_BITS)) as u64) & lp.mask()));
        }
        MobileState {
            round: ((w >> head) & 0xFF) as u16,
            inputs,
            locals,
            decided,
        }
    };
    let permute = move |w: u128, perm: &PidPerm| {
        let lane_mask = (1u128 << lane) - 1;
        let mut out = w >> head << head;
        for i in 0..n {
            let bits = (w >> (i as u32 * lane)) & lane_mask;
            out |= bits << (perm.apply(Pid::new(i)).index() as u32 * lane);
        }
        out
    };
    Some(StatePacker::new(pack, unpack).with_permute(permute))
}

impl<P> MobileModel<P>
where
    P: SyncProtocol + Anonymous,
    P::LocalState: Ord,
{
    /// The single-sweep packed canonicalization, when the codec and the
    /// cached permutation table are available and `x` packs.
    fn packed_canon(
        &self,
        x: &MobileState<P::LocalState>,
    ) -> Option<(MobileState<P::LocalState>, PidPerm, u64)> {
        let packer = self.packer.as_ref()?;
        if self.perms.is_empty() {
            return None;
        }
        canonicalize_packed(self, packer, &self.perms, x)
    }
}

impl<P: SyncProtocol> LayeredModel for MobileModel<P> {
    type State = MobileState<P::LocalState>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        // A single mobile failure: at most one process is faulty per run
        // (the one silenced from some round on).
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        MobileState {
            round: 0,
            inputs: inputs.to_vec(),
            locals,
            decided,
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        match self.layering {
            MobileLayering::S1 => self.s1_layer(x),
            MobileLayering::Full => self.full_layer(x),
        }
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.round)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, _x: &Self::State, _i: Pid) -> bool {
        // M^mf displays no finite failure: the environment can always stop
        // losing messages, so no finite state pins a process as faulty.
        false
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        x.round == y.round
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i])
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        let everyone: Vec<Pid> = Pid::all(self.n).collect();
        self.apply(x, j, &everyone)
    }

    fn state_packer(&self) -> Option<StatePacker<Self::State>> {
        self.packer.clone()
    }
}

// Process renaming acts on M^mf states by relocating every per-process
// component. For an anonymous protocol the *full* environment is
// equivariant: `(π·x)(π(j), π(G)) = π·(x(j, G))`, because losing `π(j)`'s
// messages to `π(G)` in the renamed state loses exactly the renamed copies
// of the messages lost in the original, and local transitions ignore pids.
// Enumerating all `(j, G)` therefore enumerates the same layer up to
// renaming — the `Full` layering is symmetric. `S₁` is *not*: prefix sets
// `[k]` are not closed under renaming (checked by the symmetry tests), so
// `symmetric_layering` reports it unusable for quotienting.
impl<P> Symmetric for MobileModel<P>
where
    P: SyncProtocol + Anonymous,
    P::LocalState: Ord,
{
    fn permute_state(&self, x: &Self::State, perm: &PidPerm) -> Self::State {
        MobileState {
            round: x.round,
            inputs: perm.permute_vec(&x.inputs),
            locals: perm.permute_vec(&x.locals),
            decided: perm.permute_vec(&x.decided),
        }
    }

    fn symmetric_layering(&self) -> bool {
        self.layering == MobileLayering::Full
    }

    // Both canonicalization entry points take the packed fast path first
    // and fall back to the brute-force minimum. Packability is
    // orbit-invariant, so a given orbit is canonicalized by exactly one of
    // the two rules wherever it is encountered — the rep is well defined
    // even though the rules pick different (equally canonical) members.
    fn canonicalize(&self, x: &Self::State) -> (Self::State, PidPerm) {
        if let Some((rep, pi, _)) = self.packed_canon(x) {
            return (rep, pi);
        }
        canonicalize_by_min(self, x)
    }

    fn canonicalize_with_orbit(&self, x: &Self::State) -> (Self::State, PidPerm, u64) {
        if let Some(out) = self.packed_canon(x) {
            return out;
        }
        let (rep, pi) = canonicalize_by_min(self, x);
        (rep, pi, orbit_size(self, x) as u64)
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{
        check_crash_display, check_fault_independence, check_graded, similarity_report,
        similarity_witness,
    };
    use layered_protocols::{FloodMin, HastyMin};

    use super::*;

    fn model(n: usize, rounds: u16) -> MobileModel<FloodMin> {
        MobileModel::new(n, FloodMin::new(rounds))
    }

    #[test]
    fn initial_states_form_con0() {
        let m = model(3, 2);
        let inits = m.initial_states();
        assert_eq!(inits.len(), 8);
        assert!(inits.iter().all(|x| x.round == 0));
        assert!(inits.iter().all(|x| x.decided.iter().all(Option::is_none)));
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 2);
        assert_eq!(check_graded(&m, 2), None);
        assert_eq!(check_fault_independence(&m, 1), None);
        assert_eq!(check_crash_display(&m, 1), None);
    }

    #[test]
    fn clean_action_is_j_independent() {
        // x(j, [0]) is the same state for all j (paper, Section 5).
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let a = m.apply(&x, Pid::new(0), &[]);
        let b = m.apply(&x, Pid::new(2), &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_actions_differ_in_one_process() {
        // x(j,[k]) and x(j,[k+1]) agree modulo process k+1 (Lemma 5.1(iii)).
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let j = Pid::new(0);
        for k in 0..3usize {
            let a = m.apply(&x, j, &Pid::all(k).collect::<Vec<_>>());
            let b = m.apply(&x, j, &Pid::all(k + 1).collect::<Vec<_>>());
            assert!(
                m.agree_modulo(&a, &b, Pid::new(k)),
                "x(j,[{k}]) and x(j,[{}]) must agree modulo p{}",
                k + 1,
                k + 1
            );
            // And they are similar: some third process is non-failed.
            assert!(similarity_witness(&m, &a, &b).is_some());
        }
    }

    #[test]
    fn s1_layer_is_similarity_connected() {
        // Lemma 5.1(iii), first half: S₁(x) is similarity connected.
        let m = model(3, 2);
        for x0 in m.initial_states() {
            let layer = m.s1_layer(&x0);
            let rep = similarity_report(&m, &layer);
            assert!(rep.connected, "S₁(x) must be similarity connected");
            // And one level deeper.
            for x1 in layer.iter().take(3) {
                let rep1 = similarity_report(&m, &m.s1_layer(x1));
                assert!(rep1.connected);
            }
        }
    }

    #[test]
    fn s1_is_sublayering_of_full_model() {
        // Lemma 5.1(i): S₁-runs are runs of M^mf.
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ZERO, Value::ONE]);
        assert!(m.s1_is_sublayer_at(&x));
    }

    #[test]
    fn s1_layer_size_is_at_most_n_squared_plus_one() {
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let layer = m.s1_layer(&x);
        assert!(layer.len() <= 3 * 3 + 1);
        assert!(layer.len() >= 2, "losses must matter on mixed inputs");
    }

    #[test]
    fn crash_step_silences_all_messages() {
        let m = model(2, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE]);
        let y = m.crash_step(&x, Pid::new(0));
        // p2 never heard p1's 0, so p2 decides 1 after round 1; p1 knows both.
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[0], Some(Value::ZERO));
    }

    #[test]
    fn decisions_are_write_once() {
        let m = MobileModel::new(2, HastyMin);
        let x = m.initial_state(&[Value::ONE, Value::ZERO]);
        assert_eq!(x.decided[0], Some(Value::ONE));
        // After a clean round p1 learns 0; HastyMin would now "decide" 0,
        // but the latch must keep the original decision.
        let y = m.apply(&x, Pid::new(0), &[]);
        assert_eq!(y.decided[0], Some(Value::ONE));
    }

    #[test]
    fn rounds_advance_depth() {
        let m = model(2, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ZERO]);
        let y = m.apply(&x, Pid::new(0), &[]);
        assert_eq!(m.depth(&x), 0);
        assert_eq!(m.depth(&y), 1);
    }
}
