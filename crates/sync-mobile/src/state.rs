//! Global states of the mobile-failure synchronous model.

use layered_core::{Pid, SnapshotError, SnapshotReader, SnapshotState, Value};

/// A global state of `M^mf` (and of any synchronous round model built on a
/// [`SyncProtocol`](layered_protocols::SyncProtocol)).
///
/// Per the paper (Section 5, footnote 3), the environment's local state in
/// `M^mf` is constant and is therefore not represented; the `round` counter
/// is analysis bookkeeping that is common knowledge in a synchronous model.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MobileState<L> {
    /// Completed rounds.
    pub round: u16,
    /// The run's input assignment (recoverable from the local states; kept
    /// explicit for the validity checker).
    pub inputs: Vec<Value>,
    /// Per-process protocol local states.
    pub locals: Vec<L>,
    /// Per-process write-once decision variables `d_i`.
    pub decided: Vec<Option<Value>>,
}

impl<L> MobileState<L> {
    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Whether the state is degenerate (no processes). Never true for
    /// states produced by a model (`n >= 2`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// The decision of process `i`, if made.
    #[must_use]
    pub fn decision(&self, i: Pid) -> Option<Value> {
        self.decided[i.index()]
    }

    /// Processes that have decided.
    pub fn decided_processes(&self) -> impl Iterator<Item = Pid> + '_ {
        self.decided
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| Pid::new(i))
    }
}

impl<L: SnapshotState> SnapshotState for MobileState<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.round.encode(out);
        self.inputs.encode(out);
        self.locals.encode(out);
        self.decided.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MobileState {
            round: u16::decode(r)?,
            inputs: Vec::decode(r)?,
            locals: Vec::decode(r)?,
            decided: Vec::decode(r)?,
        })
    }
}
