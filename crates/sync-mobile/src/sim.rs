//! Adversary adapter: [`SimModel`] for the mobile-failure model.
//!
//! An `S₁` layer move is the pair `(j, [k])` — lose process `j`'s messages
//! to the prefix `[k]` this round. The adapter exposes exactly those moves,
//! so every simulated run is an `S₁`-execution by construction (Lemma 5.1
//! already establishes that `S₁`-runs are `M^mf`-runs).

use layered_core::sim::{MoveRecord, SimModel};
use layered_core::{LayeredModel, Pid};
use layered_protocols::SyncProtocol;

use crate::model::MobileModel;

/// One `S₁` move: lose `j`'s messages to the prefix `[k]`.
///
/// `k == 0` is the clean round (no message lost; `j` is then irrelevant and
/// normalized to `p1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MobileMove {
    /// The process whose messages are lost this round.
    pub j: Pid,
    /// The prefix bound: messages to `p1, …, pk` are lost.
    pub k: usize,
}

impl<P: SyncProtocol> SimModel for MobileModel<P> {
    type Move = MobileMove;

    fn clean_move(&self, _x: &Self::State) -> MobileMove {
        MobileMove {
            j: Pid::new(0),
            k: 0,
        }
    }

    fn fault_move(&self, _x: &Self::State, target: Pid, intensity: usize) -> Option<MobileMove> {
        // The mobile failure can strike any process in any round: always
        // legal. Intensity selects the destination prefix.
        let n = self.num_processes();
        Some(MobileMove {
            j: target,
            k: 1 + intensity % n,
        })
    }

    fn sample_move(&self, _x: &Self::State, bits: &mut dyn FnMut(u64) -> u64) -> MobileMove {
        let n = self.num_processes() as u64;
        let i = bits(1 + n * n);
        if i == 0 {
            MobileMove {
                j: Pid::new(0),
                k: 0,
            }
        } else {
            let i = i - 1;
            MobileMove {
                j: Pid::new((i / n) as usize),
                k: (i % n) as usize + 1,
            }
        }
    }

    fn apply_move(&self, x: &Self::State, mv: &MobileMove) -> Self::State {
        let prefix: Vec<Pid> = Pid::all(mv.k).collect();
        self.apply(x, mv.j, &prefix)
    }

    fn encode_move(&self, mv: &MobileMove) -> MoveRecord {
        if mv.k == 0 {
            MoveRecord::clean()
        } else {
            MoveRecord {
                kind: "omit",
                args: vec![mv.j.index() as u64, mv.k as u64],
                fault: true,
            }
        }
    }

    fn decode_move(&self, kind: &str, args: &[u64]) -> Option<MobileMove> {
        let n = self.num_processes();
        match (kind, args) {
            ("clean", []) => Some(MobileMove {
                j: Pid::new(0),
                k: 0,
            }),
            ("omit", [j, k]) => {
                let (j, k) = (usize::try_from(*j).ok()?, usize::try_from(*k).ok()?);
                if j < n && (1..=n).contains(&k) {
                    Some(MobileMove { j: Pid::new(j), k })
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{LayeredModel, Value};
    use layered_protocols::FloodMin;

    use super::*;

    #[test]
    fn every_move_lands_in_the_layer() {
        let m = MobileModel::new(3, FloodMin::new(2));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let layer = m.successors(&x);
        let mut draws = 0u64;
        let mut bits = |bound: u64| {
            draws = draws.wrapping_mul(6364136223846793005).wrapping_add(7);
            draws % bound
        };
        for _ in 0..32 {
            let mv = m.sample_move(&x, &mut bits);
            assert!(layer.contains(&m.apply_move(&x, &mv)), "{mv:?}");
        }
        assert!(layer.contains(&m.apply_move(&x, &m.clean_move(&x))));
        let f = m.fault_move(&x, Pid::new(1), 7).expect("always legal");
        assert!(layer.contains(&m.apply_move(&x, &f)));
        assert!(m.is_fault(&f));
        assert!(!m.is_fault(&m.clean_move(&x)));
    }
}
