//! The single-mobile-failure synchronous model `M^mf` (Santoro–Widmayer)
//! and its prefix layering `S₁`, per Section 5 of Moses & Rajsbaum,
//! PODC 1998.
//!
//! In every round the environment picks a pair `(j, G)` and loses all
//! messages from process `j` to the processes in `G`; the offender may
//! change between rounds (the failure is *mobile*). The layering `S₁`
//! restricts `G` to prefixes `[k] = {1, …, k}`.
//!
//! The crate reproduces, executably:
//!
//! * Lemma 5.1 — `S₁` is a layering of `M^mf`; it displays an arbitrary
//!   crash failure; every layer `S₁(x)` is similarity (hence valence)
//!   connected;
//! * Corollary 5.2 — no protocol solves consensus under a single mobile
//!   failure: for each candidate protocol the engine exhibits a bivalent
//!   run or a concrete requirement violation.
//!
//! # Example
//!
//! ```
//! use layered_core::{build_bivalent_run, ValenceSolver};
//! use layered_protocols::FloodMin;
//! use layered_sync_mobile::MobileModel;
//!
//! let m = MobileModel::new(3, FloodMin::new(2));
//! let mut solver = ValenceSolver::new(&m, 2);
//! let run = build_bivalent_run(&mut solver, 1);
//! // A bivalent initial state exists (Lemma 3.6) and stays bivalent for a
//! // layer (Lemma 4.1): consensus cannot have been reached.
//! assert!(run.chain.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod model;
mod sim;
mod state;

pub use model::{MobileLayering, MobileModel};
pub use sim::MobileMove;
pub use state::MobileState;

/// Stable key identifying this model in certificate stores and query URLs.
pub const MODEL_KEY: &str = "sync-mobile";

/// Claims the certificate registry can compute and serve for this model:
/// the Lemma 5.1 layer-scan verdict (with its embedded ever-bivalent
/// witness) and the Theorem 4.2 impossibility witness.
pub const CLAIM_KEYS: &[&str] = &["lemma_5_1", "theorem_4_2"];
