//! Combinatorial-topology machinery for general decision problems, per
//! Section 7 of Moses & Rajsbaum, PODC 1998.
//!
//! Provides vertices/simplexes/complexes ([`Simplex`], [`Complex`]),
//! decision problems `⟨I, O, Δ⟩` with a standard task library
//! ([`DecisionTask`], [`tasks`]), coverings and generalized valence with
//! the Lemma 7.1 bivalent-run construction ([`Covering`],
//! [`CoveringSolver`], [`covering_bivalent_run`]), k-thick-connectivity
//! ([`Complex::is_k_thick_connected`]), an exhaustive task checker over any
//! layered model ([`check_task`]), and the Lemma 7.6 s-diameter recurrence
//! ([`diameter_sweep`]).
//!
//! Together these reproduce the paper's characterization story
//! (Theorem 7.2, Corollary 7.3, Theorem 7.7): consensus's output structure
//! fails 1-thick-connectivity and no protocol passes the checker in any of
//! the 1-resilient models, while 2-set agreement, identity, and constant
//! tasks pass on both counts.
//!
//! # Example
//!
//! ```
//! use layered_topology::tasks;
//!
//! // The combinatorial half of the FLP story:
//! assert!(!tasks::consensus(3).is_k_thick_connected(1));
//! assert!(tasks::k_set_agreement(3, 2).is_k_thick_connected(1));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checker;
mod complex;
mod covering;
mod diameter;
mod simplex;
mod task;

pub use checker::{check_task, TaskReport, TaskViolation};
pub use complex::Complex;
pub use covering::{
    covering_bivalent_run, decided_simplex, nonfaulty_decision_simplexes, Covering,
    CoveringRunOutcome, CoveringSolver, CoveringValences,
};
pub use diameter::{diameter_sweep, lemma_7_6_bound, DiameterRow};
pub use simplex::Simplex;
pub use task::{tasks, DecisionTask};
