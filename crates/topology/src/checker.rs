//! Exhaustive checking of general decision problems against a layered
//! model — the Section 7 generalization of the consensus checker.
//!
//! The paper's two requirements for a decision problem `D = ⟨I, O, Δ⟩`:
//! *Decision* (every nonfaulty process eventually decides) and *Validity*
//! (the decisions of a run with input simplex `s` form a simplex in
//! `Δ(s)`). [`check_task`] sweeps all `S`-executions to a horizon and
//! reports violations of either, with state witnesses. Together with the
//! k-thick-connectivity verdicts on the task's output structure, this
//! reproduces the Corollary 7.3 classification experimentally: tasks whose
//! spans are 1-thick-connected have passing protocols, and tasks whose
//! spans are not (consensus) fail for every candidate.

use std::collections::HashSet;

use layered_core::{LayeredModel, Pid};

use crate::covering::decided_simplex;
use crate::simplex::Simplex;
use crate::task::DecisionTask;

/// A violation of a decision problem's requirements.
#[derive(Clone, Debug)]
pub enum TaskViolation<S> {
    /// The decisions at a state do not form a simplex of `Δ(inputs)`.
    Validity {
        /// Witness state.
        state: S,
        /// The offending decision simplex.
        decisions: Simplex,
    },
    /// An execution reached the horizon with obligated processes undecided.
    Decision {
        /// Witness state at the horizon.
        state: S,
        /// Obligated processes that have not decided.
        undecided: Vec<Pid>,
    },
}

impl<S> TaskViolation<S> {
    /// Short tag for reporting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TaskViolation::Validity { .. } => "validity",
            TaskViolation::Decision { .. } => "decision",
        }
    }
}

/// Result of an exhaustive task sweep.
#[derive(Clone, Debug)]
pub struct TaskReport<S> {
    /// Number of distinct states visited.
    pub states_explored: usize,
    /// The horizon used.
    pub horizon: usize,
    /// Violations found (capped).
    pub violations: Vec<TaskViolation<S>>,
}

impl<S> TaskReport<S> {
    /// Whether the protocol solves the task over the explored executions.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively checks a protocol (embodied in `model`) against a decision
/// problem over all `S`-executions of up to `horizon` layers.
pub fn check_task<M: LayeredModel>(
    model: &M,
    task: &DecisionTask,
    horizon: usize,
    max_violations: usize,
) -> TaskReport<M::State> {
    assert_eq!(
        model.num_processes(),
        task.num_processes(),
        "model and task must agree on n"
    );
    let mut report = TaskReport {
        states_explored: 0,
        horizon,
        violations: Vec::new(),
    };
    let mut frontier: Vec<M::State> = task
        .inputs()
        .iter()
        .map(|inputs| model.initial_state(inputs))
        .collect();
    for depth in 0..=horizon {
        let mut next = Vec::new();
        for x in &frontier {
            report.states_explored += 1;
            let decisions = decided_simplex(model, x);
            if !task.decision_allowed(&model.inputs_of(x), &decisions)
                && report.violations.len() < max_violations
            {
                report.violations.push(TaskViolation::Validity {
                    state: x.clone(),
                    decisions,
                });
            }
            if depth == horizon {
                let undecided: Vec<Pid> = model
                    .obligated(x)
                    .into_iter()
                    .filter(|&i| model.decision(x, i).is_none())
                    .collect();
                if !undecided.is_empty() && report.violations.len() < max_violations {
                    report.violations.push(TaskViolation::Decision {
                        state: x.clone(),
                        undecided,
                    });
                }
            } else {
                next.extend(model.successors(x));
            }
            if report.violations.len() >= max_violations {
                return report;
            }
        }
        let mut seen = HashSet::new();
        frontier = next
            .into_iter()
            .filter(|s| seen.insert(s.clone()))
            .collect();
        if frontier.is_empty() {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use layered_core::testkit::ScriptedModelBuilder;
    use layered_core::Value;

    use super::*;
    use crate::task::tasks;

    #[test]
    fn consensus_task_flags_split_decisions() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .initial(&[Value::ZERO, Value::ONE], 1)
            .initial(&[Value::ONE, Value::ZERO], 2)
            .initial(&[Value::ONE, Value::ONE], 3)
            .decision(1, 0, Value::ZERO)
            .decision(1, 1, Value::ONE) // split decision on mixed inputs
            .depth(0, 0)
            .depth(1, 0)
            .depth(2, 0)
            .depth(3, 0)
            .build();
        let task = tasks::consensus(2);
        let report = check_task(&m, &task, 0, 10);
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.kind() == "validity"));
    }

    #[test]
    fn identity_task_accepts_own_input_decisions() {
        let mut b = ScriptedModelBuilder::new(2, 1);
        for (id, inputs) in layered_core::binary_input_vectors(2).iter().enumerate() {
            let id = id as u32;
            b = b.initial(inputs, id).depth(id, 0);
            for (p, &v) in inputs.iter().enumerate() {
                b = b.decision(id, p, v);
            }
        }
        let m = b.build();
        let task = tasks::identity(2);
        let report = check_task(&m, &task, 0, 10);
        assert!(report.passed(), "{:?}", report.violations);
        // The same decisions violate the constant-0 task on non-zero inputs.
        let report = check_task(&m, &tasks::constant(2, Value::ZERO), 0, 10);
        assert!(!report.passed());
    }

    #[test]
    fn decision_violation_reported_at_horizon() {
        let mut b = ScriptedModelBuilder::new(2, 1);
        for (id, inputs) in layered_core::binary_input_vectors(2).iter().enumerate() {
            b = b.initial(inputs, id as u32).depth(id as u32, 0);
        }
        let m = b.build();
        let report = check_task(&m, &tasks::consensus(2), 0, 10);
        assert!(!report.passed());
        assert!(report.violations.iter().all(|v| v.kind() == "decision"));
    }

    #[test]
    #[should_panic(expected = "agree on n")]
    fn mismatched_n_rejected() {
        let m = ScriptedModelBuilder::new(2, 1)
            .initial(&[Value::ZERO, Value::ZERO], 0)
            .build();
        let _ = check_task(&m, &tasks::consensus(3), 0, 1);
    }
}
