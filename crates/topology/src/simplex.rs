//! Vertices, simplexes, and complexes (Section 7 of the paper).
//!
//! A *vertex* is a pair `⟨i, v⟩` of a process id and a value; a *simplex*
//! is a set of vertices with distinct process ids; a *complex* is a set of
//! simplexes closed under containment. A `k`-size simplex has `k` vertices;
//! in an `n`-size complex the maximal simplexes have `n` elements.

use std::collections::BTreeMap;
use std::fmt;

use layered_core::{Pid, Value};

/// A simplex: an assignment of values to a set of distinct processes.
///
/// # Examples
///
/// ```
/// use layered_core::{Pid, Value};
/// use layered_topology::Simplex;
///
/// let s = Simplex::from_pairs([(Pid::new(0), Value::ZERO), (Pid::new(2), Value::ONE)]);
/// assert_eq!(s.size(), 2);
/// assert!(s.contains_vertex(Pid::new(0), Value::ZERO));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Simplex {
    vertices: BTreeMap<Pid, Value>,
}

impl Simplex {
    /// The empty simplex.
    #[must_use]
    pub fn new() -> Self {
        Simplex::default()
    }

    /// A simplex from (process, value) pairs.
    ///
    /// # Panics
    ///
    /// Panics if a process id appears twice (vertices of a simplex carry
    /// distinct process ids).
    pub fn from_pairs<I: IntoIterator<Item = (Pid, Value)>>(pairs: I) -> Self {
        let mut vertices = BTreeMap::new();
        for (p, v) in pairs {
            assert!(
                vertices.insert(p, v).is_none(),
                "duplicate process id in simplex"
            );
        }
        Simplex { vertices }
    }

    /// The full simplex assigning `values[i]` to process `i`.
    #[must_use]
    pub fn full(values: &[Value]) -> Self {
        Simplex::from_pairs(values.iter().enumerate().map(|(i, &v)| (Pid::new(i), v)))
    }

    /// Number of vertices.
    #[must_use]
    pub fn size(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the simplex has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The value assigned to `p`, if any.
    #[must_use]
    pub fn value_of(&self, p: Pid) -> Option<Value> {
        self.vertices.get(&p).copied()
    }

    /// Whether `⟨p, v⟩` is a vertex of the simplex.
    #[must_use]
    pub fn contains_vertex(&self, p: Pid, v: Value) -> bool {
        self.value_of(p) == Some(v)
    }

    /// Whether `self ⊆ other` (every vertex of `self` is a vertex of
    /// `other`).
    #[must_use]
    pub fn is_face_of(&self, other: &Simplex) -> bool {
        self.vertices
            .iter()
            .all(|(p, v)| other.vertices.get(p) == Some(v))
    }

    /// The intersection of two simplexes (the common vertices).
    #[must_use]
    pub fn intersection(&self, other: &Simplex) -> Simplex {
        Simplex {
            vertices: self
                .vertices
                .iter()
                .filter(|(p, v)| other.vertices.get(p) == Some(v))
                .map(|(&p, &v)| (p, v))
                .collect(),
        }
    }

    /// Adds or replaces a vertex, returning the extended simplex.
    #[must_use]
    pub fn with_vertex(mut self, p: Pid, v: Value) -> Simplex {
        self.vertices.insert(p, v);
        self
    }

    /// Iterates over the vertices in process order.
    pub fn vertices(&self) -> impl Iterator<Item = (Pid, Value)> + '_ {
        self.vertices.iter().map(|(&p, &v)| (p, v))
    }

    /// The set of distinct values appearing in the simplex.
    #[must_use]
    pub fn values(&self) -> std::collections::BTreeSet<Value> {
        self.vertices.values().copied().collect()
    }

    /// The process ids of the simplex.
    #[must_use]
    pub fn processes(&self) -> Vec<Pid> {
        self.vertices.keys().copied().collect()
    }
}

impl fmt::Display for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (p, v)) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "⟨{p},{v}⟩")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(i: usize) -> Pid {
        Pid::new(i)
    }

    #[test]
    fn construction_and_access() {
        let s = Simplex::full(&[Value::ZERO, Value::ONE]);
        assert_eq!(s.size(), 2);
        assert_eq!(s.value_of(px(0)), Some(Value::ZERO));
        assert_eq!(s.value_of(px(5)), None);
        assert_eq!(s.values().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate process id")]
    fn duplicate_pid_rejected() {
        let _ = Simplex::from_pairs([(px(0), Value::ZERO), (px(0), Value::ONE)]);
    }

    #[test]
    fn face_relation() {
        let big = Simplex::full(&[Value::ZERO, Value::ONE, Value::ONE]);
        let face = Simplex::from_pairs([(px(1), Value::ONE)]);
        assert!(face.is_face_of(&big));
        assert!(Simplex::new().is_face_of(&big));
        let not_face = Simplex::from_pairs([(px(1), Value::ZERO)]);
        assert!(!not_face.is_face_of(&big));
    }

    #[test]
    fn intersection_keeps_common_vertices() {
        let a = Simplex::full(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let b = Simplex::full(&[Value::ZERO, Value::ZERO, Value::ZERO]);
        let i = a.intersection(&b);
        assert_eq!(i.size(), 2);
        assert!(i.contains_vertex(px(0), Value::ZERO));
        assert!(i.contains_vertex(px(2), Value::ZERO));
        assert_eq!(i.value_of(px(1)), None);
    }

    #[test]
    fn display_is_readable() {
        let s = Simplex::from_pairs([(px(0), Value::ONE)]);
        assert_eq!(s.to_string(), "{⟨p1,1⟩}");
    }
}
