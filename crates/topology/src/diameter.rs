//! The s-diameter growth bound (Lemma 7.6 / Theorem 7.7).
//!
//! Lemma 7.6: if a set `X` of states is similarity connected with
//! s-diameter `d_X`, every layer `S(x)` is similarity connected with
//! s-diameter at most `d_Y`, and the model displays an arbitrary crash
//! failure on `X`, then `S(X)` is similarity connected with s-diameter at
//! most `d_X·d_Y + d_X + d_Y`. Iterating the recurrence bounds the diameter
//! of the round-`m` state set, which is the quantitative ingredient of the
//! Theorem 7.7 necessary condition for `t`-round solvability.
//!
//! [`diameter_sweep`] measures the actual s-diameters level by level and
//! tabulates them against the recurrence, so the bound can be *checked*
//! rather than assumed.

use layered_core::{s_diameter, LayeredModel};

/// The Lemma 7.6 bound on the s-diameter of `S(X)`.
#[must_use]
pub fn lemma_7_6_bound(d_x: usize, d_y: usize) -> usize {
    d_x * d_y + d_x + d_y
}

/// One level of a [`diameter_sweep`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiameterRow {
    /// Depth (layers from the initial states).
    pub depth: usize,
    /// Number of distinct states at this depth.
    pub states: usize,
    /// Measured s-diameter of the full depth-`m` state set (`None` =
    /// similarity disconnected).
    pub measured: Option<usize>,
    /// Maximum measured s-diameter over the layers `S(x)` of the previous
    /// level (`d_Y^{m−1}`); `None` for the initial level.
    pub layer_diameter: Option<usize>,
    /// The recurrence bound `d_X·d_Y + d_X + d_Y` computed from the
    /// previous level's *measured* values; `None` where undefined.
    pub bound: Option<usize>,
}

impl DiameterRow {
    /// Whether the measured diameter respects the recurrence bound (rows
    /// with no bound or no measurement pass vacuously).
    #[must_use]
    pub fn within_bound(&self) -> bool {
        match (self.measured, self.bound) {
            (Some(m), Some(b)) => m <= b,
            _ => true,
        }
    }
}

/// Measures s-diameters of the depth-`m` state sets for `m = 0..=depth`
/// and tabulates them against the Lemma 7.6 recurrence.
pub fn diameter_sweep<M: LayeredModel>(model: &M, depth: usize) -> Vec<DiameterRow> {
    let mut rows = Vec::with_capacity(depth + 1);
    let mut level = model.initial_states();
    let mut prev_measured = None;
    for m in 0..=depth {
        let measured = s_diameter(model, &level);
        // d_Y^m: the worst layer diameter over this level (used for the
        // next row's bound).
        let mut layer_diameter = Some(0usize);
        let mut next = Vec::new();
        if m < depth {
            let mut seen = std::collections::HashSet::new();
            for x in &level {
                let layer = model.successors(x);
                match (s_diameter(model, &layer), layer_diameter) {
                    (Some(d), Some(cur)) => layer_diameter = Some(cur.max(d)),
                    _ => layer_diameter = None,
                }
                for y in layer {
                    if seen.insert(y.clone()) {
                        next.push(y);
                    }
                }
            }
        } else {
            layer_diameter = None;
        }
        let bound = match (
            m,
            prev_measured,
            rows.last().and_then(|r: &DiameterRow| r.layer_diameter),
        ) {
            (0, _, _) => None,
            (_, Some(dx), Some(dy)) => Some(lemma_7_6_bound(dx, dy)),
            _ => None,
        };
        rows.push(DiameterRow {
            depth: m,
            states: level.len(),
            measured,
            layer_diameter,
            bound,
        });
        prev_measured = measured;
        level = next;
    }
    // `layer_diameter` on row m was computed as we advanced; shift so each
    // row reports the layer diameter *of its own level* (already the case).
    rows
}

#[cfg(test)]
mod tests {
    use layered_core::testkit::CounterModel;

    use super::*;

    #[test]
    fn bound_formula() {
        assert_eq!(lemma_7_6_bound(0, 0), 0);
        assert_eq!(lemma_7_6_bound(2, 3), 11);
        assert_eq!(lemma_7_6_bound(1, 1), 3);
    }

    #[test]
    fn sweep_on_counter_model() {
        // CounterModel initial states: all 2^n input vectors; agree-modulo
        // chains make the set similarity connected with diameter >= 1.
        let m = CounterModel::new(3, 2);
        let rows = diameter_sweep(&m, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[0].states, 8);
        assert!(rows[0].measured.is_some());
        assert!(rows[0].bound.is_none());
        for r in &rows {
            assert!(r.within_bound(), "row {r:?} exceeds the Lemma 7.6 bound");
        }
    }

    #[test]
    fn rows_report_layer_diameters() {
        // branch = 1: singleton layers have diameter 0.
        let m = CounterModel::new(2, 1);
        let rows = diameter_sweep(&m, 1);
        // Non-terminal rows carry a layer diameter, the last row does not.
        assert_eq!(rows[0].layer_diameter, Some(0));
        assert!(rows[1].layer_diameter.is_none());
        assert_eq!(rows[1].bound, rows[0].measured);
    }
}
