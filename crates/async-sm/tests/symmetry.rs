//! Symmetry-reduction soundness for the shared-memory model: the
//! `FullSplit` layering (arbitrary early-reader sets) is equivariant while
//! the synchronic `S^rw` is not, valence flags are orbit-invariant,
//! quotient and full scans agree, and de-quotiented witnesses re-verify.

use std::collections::HashSet;

use layered_async_sm::{SmLayering, SmModel};
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_quotient,
    ImpossibilityWitness, LayeredModel, PidPerm, QuotientSolver, Symmetric, ValenceSolver,
};
use layered_protocols::SmFloodMin;

fn sym_model(n: usize, phases: u16) -> SmModel<SmFloodMin> {
    SmModel::new(n, SmFloodMin::new(phases)).with_layering(SmLayering::FullSplit)
}

#[test]
fn only_the_full_split_layering_is_symmetric() {
    assert!(!SmModel::new(3, SmFloodMin::new(2)).symmetric_layering());
    assert!(sym_model(3, 2).symmetric_layering());
}

#[test]
fn full_split_layering_is_equivariant() {
    let m = sym_model(3, 2);
    for x in m.initial_states() {
        let layer: Vec<_> = m.successors(&x);
        for pi in PidPerm::all(3) {
            let renamed_layer: HashSet<_> = m
                .successors(&m.permute_state(&x, &pi))
                .into_iter()
                .collect();
            let layer_renamed: HashSet<_> = layer.iter().map(|y| m.permute_state(y, &pi)).collect();
            assert_eq!(renamed_layer, layer_renamed, "not equivariant under {pi:?}");
        }
    }
}

#[test]
fn split_layer_contains_the_synchronic_layer() {
    // Prefixes are particular subsets: S^rw(x) ⊆ FullSplit(x).
    let m = sym_model(3, 2);
    let x = m.initial_states().remove(1);
    let full: HashSet<_> = m.full_split_layer(&x).into_iter().collect();
    for y in m.layer(&x) {
        assert!(
            full.contains(&y),
            "synchronic successor missing from split layer"
        );
    }
}

#[test]
fn valence_flags_are_orbit_invariant() {
    let m = sym_model(3, 1);
    let mut solver = ValenceSolver::new(&m, 1);
    for x in m.initial_states() {
        let flags = solver.valences(&x);
        let (rep, _) = m.canonicalize(&x);
        assert_eq!(flags, solver.valences(&rep));
        for pi in PidPerm::all(3) {
            assert_eq!(flags, solver.valences(&m.permute_state(&x, &pi)));
        }
    }
}

#[test]
fn quotient_and_full_scans_agree_at_n2() {
    let m = sym_model(2, 2);
    let mut full_solver = ValenceSolver::new(&m, 2);
    let full = scan_layer_valence_connectivity(&mut full_solver, 1, true);
    let mut quot_solver = QuotientSolver::new(&m, 2);
    let quot = scan_layer_valence_connectivity_quotient(&mut quot_solver, 1, true);
    assert_eq!(full.violation.is_none(), quot.violation.is_none());
    assert!(quot.states_seen <= full.states_seen);
}

#[test]
fn dequotiented_witness_verifies() {
    // Corollary 5.4: consensus is unsolvable in M^rw, so a bivalent run
    // exists; build it over the quotient and re-verify the genuine states.
    // (Deadline 2 keeps the first layer undecided — see the mp twin.)
    let m = sym_model(2, 2);
    let w = ImpossibilityWitness::build_quotient(&m, 2, 1)
        .expect("a bivalent run exists in the asynchronous model");
    assert!(w.verify(&m).is_ok(), "de-quotiented witness must re-verify");
}
