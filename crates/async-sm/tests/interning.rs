//! Interned-space conformance for the shared-memory model: parallel layer
//! expansion must be bit-identical to sequential, the layer scan must agree
//! across both paths, and witnesses built through the interned engines must
//! re-verify from scratch.

use layered_async_sm::SmModel;
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel,
    ImpossibilityWitness, LayeredModel, NoopObserver, StateSpace, ValenceSolver,
};
use layered_protocols::SmFloodMin;

#[test]
fn parallel_expansion_is_bit_identical_at_n3() {
    let m = SmModel::new(3, SmFloodMin::new(2));
    let roots = m.initial_states();
    let mut seq: StateSpace<SmModel<SmFloodMin>> = StateSpace::new();
    let seq_levels = seq.expand_layers(&m, &roots, 2, &NoopObserver);
    for threads in [2, 8] {
        let mut par: StateSpace<SmModel<SmFloodMin>> = StateSpace::new();
        let par_levels = par.expand_layers_parallel(&m, &roots, 2, threads, &NoopObserver);
        assert_eq!(seq_levels, par_levels, "threads={threads}");
        assert_eq!(seq.len(), par.len());
    }
}

#[test]
fn parallel_scan_matches_sequential_at_n3() {
    let m = SmModel::new(3, SmFloodMin::new(2));
    let mut seq = ValenceSolver::new(&m, 2);
    let a = scan_layer_valence_connectivity(&mut seq, 1, true);
    let mut par = ValenceSolver::new(&m, 2);
    let b = scan_layer_valence_connectivity_parallel(&mut par, 1, true, 4);
    assert_eq!(a, b);
    assert!(a.all_connected());
}

#[test]
fn interned_witness_verifies() {
    let m = SmModel::new(3, SmFloodMin::new(2));
    let w = ImpossibilityWitness::build(&m, 2, 1).expect("S^rw keeps a bivalent run alive");
    assert!(w.verify(&m).is_ok());
}
