//! Property tests for the shared-memory model: layered transitions must
//! replay as atomic schedules at arbitrary reachable states, and run
//! invariants hold along random schedules.

use proptest::prelude::*;

use layered_async_sm::{layer_action_is_legal_schedule, SmAction, SmLayering, SmModel, SmState};
use layered_core::{orbit_size, LayeredModel, Pid, PidPerm, Symmetric, Value};
use layered_protocols::{SmFloodMin, SmProtocol};

type State = SmState<<SmFloodMin as SmProtocol>::LocalState, <SmFloodMin as SmProtocol>::Reg>;

fn arb_inputs(n: usize) -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u32..2, n).prop_map(|v| v.into_iter().map(Value::new).collect())
}

/// `(j, k)` with `k == n + 1` encoding the absent action.
fn arb_action(n: usize) -> impl Strategy<Value = (usize, usize)> {
    (0..n, 0..=n + 1)
}

fn to_action(n: usize, (j, k): (usize, usize)) -> SmAction {
    if k == n + 1 {
        SmAction::Absent(Pid::new(j))
    } else {
        SmAction::Staggered { j: Pid::new(j), k }
    }
}

fn walk(m: &SmModel<SmFloodMin>, inputs: &[Value], actions: &[(usize, usize)]) -> Vec<State> {
    let mut states = vec![m.initial_state(inputs)];
    for &a in actions {
        let next = m.apply(states.last().unwrap(), to_action(3, a));
        states.push(next);
    }
    states
}

proptest! {
    /// The packed codec round-trips every state of a random run — register
    /// array included — and the word shuffle commutes with renaming.
    #[test]
    fn packed_codec_round_trips_and_commutes(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
        perm_ix in 0usize..6,
    ) {
        let m = SmModel::new(3, SmFloodMin::new(2));
        let packer = m.state_packer().expect("SmFloodMin states pack");
        let perm = &PidPerm::all(3)[perm_ix];
        for x in walk(&m, &inputs, &actions) {
            let w = packer.pack(&x).expect("reachable states pack");
            prop_assert_eq!(packer.unpack(w), x.clone());
            let shuffled = packer.permute_word(w, perm).expect("shuffle present");
            prop_assert_eq!(
                packer.unpack(shuffled),
                m.permute_state(&x, perm),
                "word shuffle must relocate lanes, registers included"
            );
        }
    }

    /// Packed canonicalization: valid witness, brute-force orbit size, and
    /// an orbit-invariant representative.
    #[test]
    fn packed_canonicalization_is_orbit_consistent(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..2),
        perm_ix in 0usize..6,
    ) {
        let m = SmModel::new(3, SmFloodMin::new(2)).with_layering(SmLayering::FullSplit);
        let x = walk(&m, &inputs, &actions).pop().unwrap();
        let (rep, pi, orbit) = m.canonicalize_with_orbit(&x);
        prop_assert_eq!(&m.permute_state(&x, &pi), &rep);
        prop_assert_eq!(orbit, orbit_size(&m, &x) as u64);
        let y = m.permute_state(&x, &PidPerm::all(3)[perm_ix]);
        let (rep_y, pi_y) = m.canonicalize(&y);
        prop_assert_eq!(&rep_y, &rep);
        prop_assert_eq!(&m.permute_state(&y, &pi_y), &rep);
    }

    /// Lemma 5.3(i) along random runs: at every reachable state, every
    /// layer action replays as a legal atomic W₁R₁W₂R₂ schedule.
    #[test]
    fn layers_replay_everywhere(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
        probe in arb_action(3),
    ) {
        let m = SmModel::new(3, SmFloodMin::new(4));
        let states = walk(&m, &inputs, &actions);
        prop_assert!(layer_action_is_legal_schedule(
            &m,
            states.last().unwrap(),
            to_action(3, probe)
        ));
    }

    /// The Lemma 5.3 bridge holds at arbitrary reachable states.
    #[test]
    fn bridge_holds_everywhere(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 0..3),
        j in 0usize..3,
    ) {
        let m = SmModel::new(3, SmFloodMin::new(8));
        let states = walk(&m, &inputs, &actions);
        prop_assert!(m.bridge_agrees(states.last().unwrap(), Pid::new(j)));
    }

    /// Run invariants: grading, write-once decisions, monotone registers
    /// (FloodMin only grows its sets), phase counts bounded by rounds.
    #[test]
    fn run_invariants(
        inputs in arb_inputs(3),
        actions in proptest::collection::vec(arb_action(3), 1..4),
    ) {
        let m = SmModel::new(3, SmFloodMin::new(2));
        let states = walk(&m, &inputs, &actions);
        for (d, w) in states.windows(2).enumerate() {
            prop_assert_eq!(m.depth(&w[1]), d + 1);
            for i in 0..3 {
                if let Some(v) = w[0].decided[i] {
                    prop_assert_eq!(w[1].decided[i], Some(v));
                }
                prop_assert!(w[1].phases_done[i] <= (d + 1) as u16);
                prop_assert!(w[1].phases_done[i] >= w[0].phases_done[i]);
                match (&w[0].regs[i], &w[1].regs[i]) {
                    (Some(old), Some(new)) => prop_assert!(old.is_subset(new)),
                    (Some(_), None) => prop_assert!(false, "register erased"),
                    _ => {}
                }
            }
        }
    }

    /// Exactly one process misses a phase per Absent action; everyone
    /// advances on staggered actions.
    #[test]
    fn phase_accounting(
        inputs in arb_inputs(3),
        a in arb_action(3),
    ) {
        let m = SmModel::new(3, SmFloodMin::new(2));
        let x = m.initial_state(&inputs);
        let y = m.apply(&x, to_action(3, a));
        let advanced = (0..3).filter(|&i| y.phases_done[i] == 1).count();
        match to_action(3, a) {
            SmAction::Absent(_) => prop_assert_eq!(advanced, 2),
            SmAction::Staggered { .. } | SmAction::Split { .. } => prop_assert_eq!(advanced, 3),
        }
    }
}
