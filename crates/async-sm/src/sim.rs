//! Adversary adapter: [`SimModel`] for the shared-memory synchronic model.
//!
//! An `S^rw` layer move *is* an environment action [`SmAction`] — `(j, A)`
//! (process `j` absent this virtual round) or `(j, k)` (process `j` writes
//! late, the prefix of proper processes reads early). The adapter exposes
//! the full action alphabet, so every simulated run is an `S^rw`-execution
//! by construction.
//!
//! Fault accounting: only `(j, A)` skips a process and counts as a fault;
//! staggered actions are fault-free scheduling choices.

use layered_core::sim::{MoveRecord, SimModel};
use layered_core::{LayeredModel, Pid};
use layered_protocols::SmProtocol;

use crate::model::{SmAction, SmModel};

impl<P: SmProtocol> SimModel for SmModel<P> {
    type Move = SmAction;

    fn clean_move(&self, _x: &Self::State) -> SmAction {
        // Everyone takes a phase; p1 is the (irrelevant) distinguished late
        // writer with every proper process reading early.
        SmAction::Staggered {
            j: Pid::new(0),
            k: self.num_processes(),
        }
    }

    fn fault_move(&self, _x: &Self::State, target: Pid, _intensity: usize) -> Option<SmAction> {
        // The asynchronous adversary may stall any process in any round.
        Some(SmAction::Absent(target))
    }

    fn sample_move(&self, _x: &Self::State, bits: &mut dyn FnMut(u64) -> u64) -> SmAction {
        let n = self.num_processes();
        // Per process: absence or one of the n + 1 stagger bounds.
        let per = (n + 2) as u64;
        let i = bits(n as u64 * per);
        let j = Pid::new((i / per) as usize);
        let r = (i % per) as usize;
        if r == 0 {
            SmAction::Absent(j)
        } else {
            SmAction::Staggered { j, k: r - 1 }
        }
    }

    fn apply_move(&self, x: &Self::State, mv: &SmAction) -> Self::State {
        self.apply(x, *mv)
    }

    fn encode_move(&self, mv: &SmAction) -> MoveRecord {
        match *mv {
            SmAction::Absent(j) => MoveRecord {
                kind: "absent",
                args: vec![j.index() as u64],
                fault: true,
            },
            SmAction::Staggered { j, k } => MoveRecord {
                kind: "staggered",
                args: vec![j.index() as u64, k as u64],
                fault: false,
            },
            SmAction::Split { j, early } => MoveRecord {
                kind: "split",
                args: vec![j.index() as u64, early],
                fault: false,
            },
        }
    }

    fn decode_move(&self, kind: &str, args: &[u64]) -> Option<SmAction> {
        let n = self.num_processes();
        match (kind, args) {
            ("absent", [j]) => {
                let j = usize::try_from(*j).ok().filter(|&j| j < n)?;
                Some(SmAction::Absent(Pid::new(j)))
            }
            ("staggered", [j, k]) => {
                let j = usize::try_from(*j).ok().filter(|&j| j < n)?;
                let k = usize::try_from(*k).ok().filter(|&k| k <= n)?;
                Some(SmAction::Staggered { j: Pid::new(j), k })
            }
            ("split", [j, early]) => {
                let j = usize::try_from(*j).ok().filter(|&j| j < n)?;
                if *early < (1u64 << n) && (*early >> j) & 1 == 0 {
                    Some(SmAction::Split {
                        j: Pid::new(j),
                        early: *early,
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{LayeredModel, Value};
    use layered_protocols::SmFloodMin;

    use super::*;

    #[test]
    fn every_move_lands_in_the_layer() {
        let m = SmModel::new(3, SmFloodMin::new(2));
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let layer = m.successors(&x);
        let mut draws = 2u64;
        let mut bits = |bound: u64| {
            draws = draws.wrapping_mul(6364136223846793005).wrapping_add(7);
            draws % bound
        };
        for _ in 0..32 {
            let mv = m.sample_move(&x, &mut bits);
            assert!(layer.contains(&m.apply_move(&x, &mv)), "{mv:?}");
        }
        assert!(layer.contains(&m.apply_move(&x, &m.clean_move(&x))));
        let f = m.fault_move(&x, Pid::new(2), 0).expect("always legal");
        assert_eq!(f, SmAction::Absent(Pid::new(2)));
        assert!(m.is_fault(&f));
        assert!(!m.is_fault(&m.clean_move(&x)));
    }
}
