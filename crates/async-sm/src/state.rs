//! Global states of the asynchronous read/write shared-memory model.

use layered_core::{Pid, SnapshotError, SnapshotReader, SnapshotState, Value};

/// A global state of `M^rw` under the synchronic layering.
///
/// The environment's local state is the register array `regs` (the paper:
/// "the shared variables are assumed to be part of the environment's local
/// state") — note that `V_j` therefore counts as *environment*, not as part
/// of process `j`'s local state, which is exactly why `x(j, n)` and
/// `x(j, A)` do **not** agree modulo `j` and the bridge argument of
/// Lemma 5.3 is needed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SmState<L, R> {
    /// Completed virtual rounds (layers).
    pub phase: u16,
    /// The run's input assignment.
    pub inputs: Vec<Value>,
    /// Single-writer registers `V_1, …, V_n`; `None` = never written.
    pub regs: Vec<Option<R>>,
    /// Per-process protocol local states.
    pub locals: Vec<L>,
    /// Per-process write-once decision variables `d_i`.
    pub decided: Vec<Option<Value>>,
    /// Per-process count of completed local phases (a process absent in a
    /// layer does not advance).
    pub phases_done: Vec<u16>,
}

impl<L, R> SmState<L, R> {
    /// Number of processes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Whether the state is degenerate (no processes). Never true for
    /// model-produced states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }

    /// The decision of process `i`, if made.
    #[must_use]
    pub fn decision(&self, i: Pid) -> Option<Value> {
        self.decided[i.index()]
    }

    /// Processes that completed every local phase so far (never absent).
    pub fn always_proper(&self) -> impl Iterator<Item = Pid> + '_ {
        let phase = self.phase;
        self.phases_done
            .iter()
            .enumerate()
            .filter(move |(_, &c)| c == phase)
            .map(|(i, _)| Pid::new(i))
    }
}

impl<L: SnapshotState, R: SnapshotState> SnapshotState for SmState<L, R> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phase.encode(out);
        self.inputs.encode(out);
        self.regs.encode(out);
        self.locals.encode(out);
        self.decided.encode(out);
        self.phases_done.encode(out);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SmState {
            phase: u16::decode(r)?,
            inputs: Vec::decode(r)?,
            regs: Vec::decode(r)?,
            locals: Vec::decode(r)?,
            decided: Vec::decode(r)?,
            phases_done: Vec::decode(r)?,
        })
    }
}
