//! The *base* shared-memory model: an interpreter over atomic read/write
//! steps, used to certify that `S^rw` is a layering of `M^rw`
//! (Lemma 5.3(i)).
//!
//! The paper defines a local phase as "at most one `write_i` action,
//! followed by a maximal sequence of `read_i(V_j)` actions in which no
//! variable is read more than once", and the layering as a scheduler
//! discipline over such phases. [`replay`] executes an arbitrary atomic
//! schedule under exactly those rules; [`schedule_for`] produces the
//! `W₁ R₁ W₂ R₂` schedule realizing a layer action. The soundness check —
//! replaying the schedule reproduces the layered transition — is
//! [`layer_action_is_legal_schedule`], exercised over every action in the
//! crate's tests and experiments.

use layered_core::Pid;
use layered_protocols::SmProtocol;

use crate::model::SmAction;
use crate::state::SmState;

/// One atomic step of the base model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmOp {
    /// `write_i`: process `i` writes its register (value determined by its
    /// protocol and current local state). Must be the first action of `i`'s
    /// local phase.
    Write(Pid),
    /// `read_i(V_var)`: process `i` reads register `var`. Each variable at
    /// most once per phase; the phase completes when all `n` variables have
    /// been read.
    Read {
        /// The reading process.
        reader: Pid,
        /// The register being read.
        var: Pid,
    },
}

/// Why a schedule is illegal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// A write after the process already started reading (or wrote twice).
    WriteMidPhase(Pid),
    /// A write scheduled for a process whose protocol skips the write.
    WriteSkipped(Pid),
    /// The same variable read twice within one phase.
    DoubleRead {
        /// The reading process.
        reader: Pid,
        /// The doubly-read register.
        var: Pid,
    },
    /// The schedule ended with a process mid-phase.
    IncompletePhase(Pid),
}

/// Per-process phase progress.
#[derive(Clone, Debug)]
struct PhaseProgress<R> {
    wrote: bool,
    reads: Vec<Option<Option<R>>>, // reads[var] = Some(value-read)
}

impl<R> PhaseProgress<R> {
    fn fresh(n: usize) -> Self {
        PhaseProgress {
            wrote: false,
            reads: std::iter::repeat_with(|| None).take(n).collect(),
        }
    }

    fn started(&self) -> bool {
        self.wrote || self.reads.iter().any(Option::is_some)
    }

    fn complete(&self) -> bool {
        self.reads.iter().all(Option::is_some)
    }
}

/// Replays an atomic schedule from `x` under the base-model rules and
/// returns the resulting state (with the virtual round counter advanced by
/// `rounds`, for comparison against layered transitions).
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the schedule violates the local-phase
/// discipline.
pub fn replay<P: SmProtocol>(
    protocol: &P,
    x: &SmState<P::LocalState, P::Reg>,
    ops: &[SmOp],
    rounds: u16,
) -> Result<SmState<P::LocalState, P::Reg>, ScheduleError> {
    let n = x.len();
    let mut regs = x.regs.clone();
    let mut locals = x.locals.clone();
    let mut decided = x.decided.clone();
    let mut phases_done = x.phases_done.clone();
    let mut progress: Vec<PhaseProgress<P::Reg>> =
        (0..n).map(|_| PhaseProgress::fresh(n)).collect();

    for &op in ops {
        match op {
            SmOp::Write(i) => {
                let p = &mut progress[i.index()];
                if p.started() {
                    return Err(ScheduleError::WriteMidPhase(i));
                }
                match protocol.write_value(&locals[i.index()]) {
                    Some(w) => regs[i.index()] = Some(w),
                    None => return Err(ScheduleError::WriteSkipped(i)),
                }
                p.wrote = true;
            }
            SmOp::Read { reader, var } => {
                let p = &mut progress[reader.index()];
                if p.reads[var.index()].is_some() {
                    return Err(ScheduleError::DoubleRead { reader, var });
                }
                p.reads[var.index()] = Some(regs[var.index()].clone());
                if p.complete() {
                    let collected: Vec<Option<P::Reg>> = p
                        .reads
                        .iter()
                        .map(|slot| slot.clone().expect("complete phase"))
                        .collect();
                    let ls = protocol.absorb(locals[reader.index()].clone(), reader, &collected);
                    if decided[reader.index()].is_none() {
                        decided[reader.index()] = protocol.decide(&ls);
                    }
                    locals[reader.index()] = ls;
                    phases_done[reader.index()] += 1;
                    progress[reader.index()] = PhaseProgress::fresh(n);
                }
            }
        }
    }
    if let Some(i) = (0..n).find(|&i| progress[i].started()) {
        return Err(ScheduleError::IncompletePhase(Pid::new(i)));
    }
    Ok(SmState {
        phase: x.phase + rounds,
        inputs: x.inputs.clone(),
        regs,
        locals,
        decided,
        phases_done,
    })
}

/// The `W₁ R₁ W₂ R₂` atomic schedule realizing a layer action at `x`.
///
/// Write steps are emitted only for processes whose protocol actually
/// writes in this phase (the paper's "at most one write").
pub fn schedule_for<P: SmProtocol>(
    protocol: &P,
    x: &SmState<P::LocalState, P::Reg>,
    action: SmAction,
) -> Vec<SmOp> {
    let n = x.len();
    let mut ops = Vec::new();
    let (j, early_mask, j_participates) = match action {
        SmAction::Absent(j) => (j, u64::MAX, false),
        SmAction::Staggered { j, k } => {
            let mask = if k == 0 { 0 } else { u64::MAX >> (64 - k) };
            (j, mask, true)
        }
        SmAction::Split { j, early } => (j, early, true),
    };
    let wants_write = |i: usize| protocol.write_value(&x.locals[i]).is_some();
    let emit_reads = |ops: &mut Vec<SmOp>, reader: usize| {
        for var in 0..n {
            ops.push(SmOp::Read {
                reader: Pid::new(reader),
                var: Pid::new(var),
            });
        }
    };
    // W₁
    for i in 0..n {
        if i != j.index() && wants_write(i) {
            ops.push(SmOp::Write(Pid::new(i)));
        }
    }
    // R₁
    for i in 0..n {
        if i != j.index() && (early_mask >> i) & 1 == 1 {
            emit_reads(&mut ops, i);
        }
    }
    // W₂
    if j_participates && wants_write(j.index()) {
        ops.push(SmOp::Write(j));
    }
    // R₂
    for i in 0..n {
        if i != j.index() && (early_mask >> i) & 1 == 0 {
            emit_reads(&mut ops, i);
        }
    }
    if j_participates {
        emit_reads(&mut ops, j.index());
    }
    ops
}

/// Lemma 5.3(i), one action at a time: replaying the `W₁ R₁ W₂ R₂` schedule
/// of `action` in the base model reproduces the layered transition exactly.
pub fn layer_action_is_legal_schedule<P: SmProtocol>(
    model: &crate::model::SmModel<P>,
    x: &SmState<P::LocalState, P::Reg>,
    action: SmAction,
) -> bool {
    let ops = schedule_for(model.protocol(), x, action);
    match replay(model.protocol(), x, &ops, 1) {
        Ok(replayed) => replayed == model.apply(x, action),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{LayeredModel, Value};
    use layered_protocols::SmFloodMin;

    use super::*;
    use crate::model::SmModel;

    fn setup(
        n: usize,
    ) -> (
        SmModel<SmFloodMin>,
        SmState<layered_protocols::FloodState, std::collections::BTreeSet<Value>>,
    ) {
        let m = SmModel::new(n, SmFloodMin::new(2));
        let x = m.initial_state(
            &(0..n)
                .map(|i| if i == 0 { Value::ZERO } else { Value::ONE })
                .collect::<Vec<_>>(),
        );
        (m, x)
    }

    #[test]
    fn every_layer_action_is_a_legal_schedule() {
        let (m, x) = setup(3);
        for action in m.actions() {
            assert!(
                layer_action_is_legal_schedule(&m, &x, action),
                "action {action:?} failed the base-model replay"
            );
        }
        // One layer deeper as well.
        let x1 = m.apply(
            &x,
            SmAction::Staggered {
                j: Pid::new(1),
                k: 2,
            },
        );
        for action in m.actions() {
            assert!(layer_action_is_legal_schedule(&m, &x1, action));
        }
    }

    #[test]
    fn double_read_is_rejected() {
        let (m, x) = setup(2);
        let reader = Pid::new(0);
        let var = Pid::new(1);
        let ops = vec![SmOp::Read { reader, var }, SmOp::Read { reader, var }];
        assert_eq!(
            replay(m.protocol(), &x, &ops, 1),
            Err(ScheduleError::DoubleRead { reader, var })
        );
    }

    #[test]
    fn write_mid_phase_is_rejected() {
        let (m, x) = setup(2);
        let p = Pid::new(0);
        let ops = vec![
            SmOp::Read {
                reader: p,
                var: Pid::new(0),
            },
            SmOp::Write(p),
        ];
        assert_eq!(
            replay(m.protocol(), &x, &ops, 1),
            Err(ScheduleError::WriteMidPhase(p))
        );
    }

    #[test]
    fn incomplete_phase_is_rejected() {
        let (m, x) = setup(2);
        let ops = vec![SmOp::Write(Pid::new(0))];
        assert_eq!(
            replay(m.protocol(), &x, &ops, 1),
            Err(ScheduleError::IncompletePhase(Pid::new(0)))
        );
    }

    #[test]
    fn interleaved_phases_are_legal() {
        // Base model allows arbitrary interleavings, not just layer shapes.
        let (m, x) = setup(2);
        let (a, b) = (Pid::new(0), Pid::new(1));
        let ops = vec![
            SmOp::Write(a),
            SmOp::Write(b),
            SmOp::Read { reader: a, var: a },
            SmOp::Read { reader: b, var: b },
            SmOp::Read { reader: a, var: b },
            SmOp::Read { reader: b, var: a },
        ];
        let y = replay(m.protocol(), &x, &ops, 1).expect("legal schedule");
        assert_eq!(y.phases_done, vec![1, 1]);
    }

    #[test]
    fn two_layer_composition_replays() {
        // Composing two layer schedules end-to-end is again legal: the
        // monotone-embedding part of the layering definition.
        let (m, x) = setup(3);
        let a1 = SmAction::Staggered {
            j: Pid::new(0),
            k: 3,
        };
        let a2 = SmAction::Absent(Pid::new(0));
        let mut ops = schedule_for(m.protocol(), &x, a1);
        let mid = m.apply(&x, a1);
        ops.extend(schedule_for(m.protocol(), &mid, a2));
        let end = replay(m.protocol(), &x, &ops, 2).expect("legal composition");
        assert_eq!(end, m.apply(&mid, a2));
    }
}
