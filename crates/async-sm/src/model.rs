//! The asynchronous read/write shared-memory model `M^rw` under the
//! synchronic layering `S^rw` (Section 5.1 of the paper).
//!
//! Registers are single-writer multi-reader. A *local phase* of process `i`
//! is at most one write of `V_i` followed by a read of every variable. The
//! layering organizes runs into virtual rounds with four stages
//! `W₁, R₁, W₂, R₂`, driven by environment actions:
//!
//! * `(j, A)` — process `j` is *absent*: the proper (other) processes write
//!   in `W₁` and read in `R₁`; `j` does nothing.
//! * `(j, k)` with `0 ≤ k ≤ n` — all proper processes write in `W₁` and `j`
//!   writes in `W₂`; proper processes `i ≤ k` read in `R₁` (missing `j`'s
//!   fresh write), while `j` and proper processes `i > k` read in `R₂`.
//!
//! Every `S^rw`-run is fair — all processes except at most one take local
//! phases infinitely often — which is how the layering sidesteps the
//! liveness bookkeeping of FLP-style proofs. Lemma 5.3 transfers the
//! abstract analysis, and Corollary 5.4 (Loui–Abu-Amara) follows: consensus
//! is unsolvable even in this barely-asynchronous submodel.

use std::collections::HashSet;

use layered_core::{
    canonicalize_by_min, canonicalize_packed, orbit_size, pack_decision, unpack_decision,
    LayeredModel, Pid, PidPerm, StatePacker, Symmetric, Value, DECISION_BITS,
};
use layered_protocols::{Anonymous, SmProtocol};

use crate::state::SmState;

/// Shorthand for the state type of a model over protocol `P`.
pub type StateOf<P> = SmState<<P as SmProtocol>::LocalState, <P as SmProtocol>::Reg>;

/// An environment action of the synchronic layering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SmAction {
    /// `(j, A)`: process `j` neither writes nor reads this round.
    Absent(Pid),
    /// `(j, k)`: `j` writes late (`W₂`); proper processes with 1-based index
    /// `≤ k` read early (`R₁`), the rest — and `j` — read late (`R₂`).
    Staggered {
        /// The slow process.
        j: Pid,
        /// The early-reader prefix bound `0 ≤ k ≤ n` (1-based, as in the
        /// paper).
        k: usize,
    },
    /// `(j, E)`: `j` writes late; the proper processes in the *arbitrary*
    /// set `E` read early, the rest — and `j` — read late. The
    /// renaming-closed generalization of `Staggered` (whose prefix `[k]` is
    /// the special case `E = {0, …, k−1}`) that
    /// [`SmLayering::FullSplit`] enumerates.
    Split {
        /// The slow process.
        j: Pid,
        /// Early-reader set as a bitmask over 0-based process indices
        /// (bit `i` ⇒ process `i` reads at `R₁`; `j`'s bit is ignored).
        early: u64,
    },
}

/// Which successor function the model exposes through
/// [`LayeredModel::successors`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SmLayering {
    /// The paper's synchronic layering `S^rw`: early readers form a prefix
    /// `[k]`.
    #[default]
    Synchronic,
    /// Early readers form an arbitrary subset `E` ([`SmAction::Split`]),
    /// plus the absences. (Exponential branching, but closed under process
    /// renaming — the layering the symmetry-reduced engine quotients.)
    FullSplit,
}

/// The shared-memory model, parameterized by a deterministic phase protocol.
///
/// # Examples
///
/// ```
/// use layered_core::check_consensus;
/// use layered_protocols::SmFloodMin;
/// use layered_async_sm::SmModel;
///
/// let m = SmModel::new(3, SmFloodMin::new(2));
/// // Corollary 5.4: consensus is unsolvable; the checker exhibits a
/// // violation for this candidate at its own deadline.
/// assert!(!check_consensus(&m, 2, 1).passed());
/// ```
#[derive(Clone, Debug)]
pub struct SmModel<P: SmProtocol> {
    n: usize,
    protocol: P,
    /// Processes with at least this many completed phases are obliged to
    /// have decided at horizon states; `None` means "completed every phase".
    obligation: Option<u16>,
    layering: SmLayering,
    packer: Option<StatePacker<SmState<P::LocalState, P::Reg>>>,
    perms: Vec<PidPerm>,
}

impl<P: SmProtocol> SmModel<P> {
    /// A model with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, protocol: P) -> Self {
        assert!(n >= 2, "the paper assumes n >= 2");
        let packer = build_packer(n, &protocol);
        let perms = if packer.is_some() && n <= 8 {
            PidPerm::all(n)
        } else {
            Vec::new()
        };
        SmModel {
            n,
            protocol,
            obligation: None,
            layering: SmLayering::Synchronic,
            packer,
            perms,
        }
    }

    /// Selects the successor function exposed by [`LayeredModel`].
    #[must_use]
    pub fn with_layering(mut self, layering: SmLayering) -> Self {
        self.layering = layering;
        self
    }

    /// Obliges every process with at least `phases` completed local phases
    /// to have decided at horizon states (used when a protocol's deadline is
    /// below the analysis horizon).
    #[must_use]
    pub fn with_obligation(mut self, phases: u16) -> Self {
        self.obligation = Some(phases);
        self
    }

    /// The protocol under analysis.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All actions available in a synchronic (`S^rw`) layer.
    #[must_use]
    pub fn actions(&self) -> Vec<SmAction> {
        let mut out = Vec::new();
        for j in Pid::all(self.n) {
            for k in 0..=self.n {
                out.push(SmAction::Staggered { j, k });
            }
            out.push(SmAction::Absent(j));
        }
        out
    }

    /// All actions available in a full-split layer: per slow process `j`,
    /// every early-reader subset of the proper processes, plus the absence.
    #[must_use]
    pub fn split_actions(&self) -> Vec<SmAction> {
        let mut out = Vec::new();
        for j in Pid::all(self.n) {
            for early in 0..(1u64 << self.n) {
                if (early >> j.index()) & 1 == 0 {
                    out.push(SmAction::Split { j, early });
                }
            }
            out.push(SmAction::Absent(j));
        }
        out
    }

    /// Applies an environment action: one `W₁ R₁ W₂ R₂` virtual round.
    #[must_use]
    pub fn apply(
        &self,
        x: &SmState<P::LocalState, P::Reg>,
        action: SmAction,
    ) -> SmState<P::LocalState, P::Reg> {
        let n = self.n;
        let mut regs = x.regs.clone();
        let mut locals = x.locals.clone();
        let mut decided = x.decided.clone();
        let mut phases_done = x.phases_done.clone();

        // Early readers as a bitmask: with `j` absent there is no `W₂`, so
        // the two snapshots coincide and the mask is irrelevant.
        let (j, early_mask, j_participates) = match action {
            SmAction::Absent(j) => (j, u64::MAX, false),
            SmAction::Staggered { j, k } => {
                assert!(k <= n, "k ranges over 0..=n");
                let mask = if k == 0 { 0 } else { u64::MAX >> (64 - k) };
                (j, mask, true)
            }
            SmAction::Split { j, early } => (j, early, true),
        };

        // W₁: proper processes write.
        for i in 0..n {
            if i == j.index() {
                continue;
            }
            if let Some(w) = self.protocol.write_value(&locals[i]) {
                regs[i] = Some(w);
            }
        }
        // R₁: early readers snapshot the registers now.
        let early_snapshot = regs.clone();
        // W₂: j writes (if participating).
        if j_participates {
            if let Some(w) = self.protocol.write_value(&locals[j.index()]) {
                regs[j.index()] = Some(w);
            }
        }
        // R₂ snapshot.
        let late_snapshot = regs.clone();

        let mut absorb = |i: usize, snapshot: &[Option<P::Reg>]| {
            let ls = self
                .protocol
                .absorb(locals[i].clone(), Pid::new(i), snapshot);
            if decided[i].is_none() {
                decided[i] = self.protocol.decide(&ls);
            }
            locals[i] = ls;
            phases_done[i] += 1;
        };

        for i in 0..n {
            if i == j.index() {
                continue;
            }
            // The paper's `i ≤ k` is 1-based; as a 0-based mask: bit i set.
            if (early_mask >> i) & 1 == 1 {
                absorb(i, &early_snapshot);
            } else {
                absorb(i, &late_snapshot);
            }
        }
        if j_participates {
            absorb(j.index(), &late_snapshot);
        }

        SmState {
            phase: x.phase + 1,
            inputs: x.inputs.clone(),
            regs,
            locals,
            decided,
            phases_done,
        }
    }

    /// The layer `S^rw(x)`, deduplicated.
    #[must_use]
    pub fn layer(&self, x: &SmState<P::LocalState, P::Reg>) -> Vec<SmState<P::LocalState, P::Reg>> {
        self.layer_of(x, self.actions())
    }

    /// The full-split layer of `x` (what [`SmLayering::FullSplit`] exposes
    /// as [`LayeredModel::successors`]), deduplicated.
    #[must_use]
    pub fn full_split_layer(
        &self,
        x: &SmState<P::LocalState, P::Reg>,
    ) -> Vec<SmState<P::LocalState, P::Reg>> {
        self.layer_of(x, self.split_actions())
    }

    fn layer_of(
        &self,
        x: &SmState<P::LocalState, P::Reg>,
        actions: Vec<SmAction>,
    ) -> Vec<SmState<P::LocalState, P::Reg>> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for action in actions {
            let y = self.apply(x, action);
            if seen.insert(y.clone()) {
                out.push(y);
            }
        }
        out
    }

    /// The bridge pair of Lemma 5.3: `(x(j,n)(j,A), x(j,A)(j,0))`.
    ///
    /// The paper's argument shows these two states agree modulo `j`, which
    /// links `x(j, n) ∼_v x(j, A)` and completes valence connectivity of the
    /// layer. [`Self::bridge_agrees`] checks the claim on a concrete state.
    #[must_use]
    pub fn bridge_pair(&self, x: &StateOf<P>, j: Pid) -> (StateOf<P>, StateOf<P>) {
        let y = self.apply(
            &self.apply(x, SmAction::Staggered { j, k: self.n }),
            SmAction::Absent(j),
        );
        let y2 = self.apply(
            &self.apply(x, SmAction::Absent(j)),
            SmAction::Staggered { j, k: 0 },
        );
        (y, y2)
    }

    /// Whether the Lemma 5.3 bridge states agree modulo `j` at `x`.
    #[must_use]
    pub fn bridge_agrees(&self, x: &SmState<P::LocalState, P::Reg>, j: Pid) -> bool {
        let (y, y2) = self.bridge_pair(x, j);
        self.agree_modulo(&y, &y2, j)
    }
}

/// Builds the packed codec for an `n`-process shared-memory model, if the
/// protocol packs both its local states and its register values and the
/// lanes fit one word. Layout, low bits first: `n` lanes of `2` input
/// bits, [`DECISION_BITS`] decision bits, the local codec, a register
/// presence tag plus the register codec (the single-writer `V_i` travels
/// with process `i`), and 4 phases-done bits; then 8 phase bits on top.
fn build_packer<P: SmProtocol>(
    n: usize,
    protocol: &P,
) -> Option<StatePacker<SmState<P::LocalState, P::Reg>>> {
    let lp = protocol.local_packer()?;
    let rp = protocol.reg_packer()?;
    let reg_off = 2 + DECISION_BITS + lp.bits();
    let phases_off = reg_off + 1 + rp.bits();
    let lane = phases_off + 4;
    let head = n as u32 * lane;
    if head + 8 > 127 {
        return None;
    }
    let pack = {
        let lp = lp.clone();
        let rp = rp.clone();
        move |x: &SmState<P::LocalState, P::Reg>| {
            if x.locals.len() != n || x.phase >= 1 << 8 {
                return None;
            }
            let mut w = u128::from(x.phase) << head;
            for i in 0..n {
                let off = i as u32 * lane;
                let inp = u64::from(x.inputs[i].get());
                if inp >= 4 || x.phases_done[i] >= 16 {
                    return None;
                }
                let dec = pack_decision(x.decided[i])?;
                let loc = lp.pack(&x.locals[i])?;
                if let Some(r) = &x.regs[i] {
                    w |= 1 << (off + reg_off);
                    w |= u128::from(rp.pack(r)?) << (off + reg_off + 1);
                }
                w |= u128::from(inp) << off;
                w |= u128::from(dec) << (off + 2);
                w |= u128::from(loc) << (off + 2 + DECISION_BITS);
                w |= u128::from(x.phases_done[i]) << (off + phases_off);
            }
            Some(w)
        }
    };
    let unpack = move |w: u128| {
        let mut inputs = Vec::with_capacity(n);
        let mut regs = Vec::with_capacity(n);
        let mut locals = Vec::with_capacity(n);
        let mut decided = Vec::with_capacity(n);
        let mut phases_done = Vec::with_capacity(n);
        for i in 0..n {
            let off = i as u32 * lane;
            inputs.push(Value::new(((w >> off) & 0b11) as u32));
            decided.push(unpack_decision(
                ((w >> (off + 2)) as u64) & ((1 << DECISION_BITS) - 1),
            ));
            locals.push(lp.unpack(((w >> (off + 2 + DECISION_BITS)) as u64) & lp.mask()));
            regs.push(
                (w >> (off + reg_off) & 1 == 1)
                    .then(|| rp.unpack(((w >> (off + reg_off + 1)) as u64) & rp.mask())),
            );
            phases_done.push(((w >> (off + phases_off)) & 0xF) as u16);
        }
        SmState {
            phase: ((w >> head) & 0xFF) as u16,
            inputs,
            regs,
            locals,
            decided,
            phases_done,
        }
    };
    let permute = move |w: u128, perm: &PidPerm| {
        let lane_mask = (1u128 << lane) - 1;
        let mut out = w >> head << head;
        for i in 0..n {
            let bits = (w >> (i as u32 * lane)) & lane_mask;
            out |= bits << (perm.apply(Pid::new(i)).index() as u32 * lane);
        }
        out
    };
    Some(StatePacker::new(pack, unpack).with_permute(permute))
}

/// A packed canonicalization result: the canonical representative, the
/// renaming carrying the input onto it, and the representative's word hash.
type PackedCanon<P> = (
    SmState<<P as SmProtocol>::LocalState, <P as SmProtocol>::Reg>,
    PidPerm,
    u64,
);

impl<P> SmModel<P>
where
    P: SmProtocol + Anonymous,
    P::LocalState: Ord,
    P::Reg: Ord,
{
    /// The single-sweep packed canonicalization, when the codec and the
    /// cached permutation table are available and `x` packs.
    fn packed_canon(&self, x: &SmState<P::LocalState, P::Reg>) -> Option<PackedCanon<P>> {
        let packer = self.packer.as_ref()?;
        if self.perms.is_empty() {
            return None;
        }
        canonicalize_packed(self, packer, &self.perms, x)
    }
}

impl<P: SmProtocol> LayeredModel for SmModel<P> {
    type State = SmState<P::LocalState, P::Reg>;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn max_failures(&self) -> usize {
        1
    }

    fn initial_state(&self, inputs: &[Value]) -> Self::State {
        assert_eq!(inputs.len(), self.n, "one input per process");
        let locals: Vec<P::LocalState> = inputs
            .iter()
            .enumerate()
            .map(|(i, &v)| self.protocol.init(self.n, Pid::new(i), v))
            .collect();
        let decided = locals.iter().map(|ls| self.protocol.decide(ls)).collect();
        SmState {
            phase: 0,
            inputs: inputs.to_vec(),
            regs: vec![None; self.n],
            locals,
            decided,
            phases_done: vec![0; self.n],
        }
    }

    fn successors(&self, x: &Self::State) -> Vec<Self::State> {
        match self.layering {
            SmLayering::Synchronic => self.layer(x),
            SmLayering::FullSplit => self.full_split_layer(x),
        }
    }

    fn depth(&self, x: &Self::State) -> usize {
        usize::from(x.phase)
    }

    fn inputs_of(&self, x: &Self::State) -> Vec<Value> {
        x.inputs.clone()
    }

    fn decision(&self, x: &Self::State, i: Pid) -> Option<Value> {
        x.decided[i.index()]
    }

    fn failed_at(&self, _x: &Self::State, _i: Pid) -> bool {
        // The asynchronous model displays no finite failure: a process that
        // has been absent can always resume.
        false
    }

    fn agree_modulo(&self, x: &Self::State, y: &Self::State, j: Pid) -> bool {
        // Environment (registers, including V_j!) must be equal; locals,
        // decisions, inputs and phase counts equal except at j.
        x.phase == y.phase
            && x.regs == y.regs
            && (0..self.n).all(|i| {
                i == j.index()
                    || (x.locals[i] == y.locals[i]
                        && x.decided[i] == y.decided[i]
                        && x.inputs[i] == y.inputs[i]
                        && x.phases_done[i] == y.phases_done[i])
            })
    }

    fn crash_step(&self, x: &Self::State, j: Pid) -> Self::State {
        self.apply(x, SmAction::Absent(j))
    }

    fn state_packer(&self) -> Option<StatePacker<Self::State>> {
        self.packer.clone()
    }

    fn obligated(&self, x: &Self::State) -> Vec<Pid> {
        match self.obligation {
            Some(r) => Pid::all(self.n)
                .filter(|i| x.phases_done[i.index()] >= r)
                .collect(),
            None => x.always_proper().collect(),
        }
    }
}

// Renaming relocates every per-process component, registers included (the
// registers are single-writer, so `V_i` travels with process `i`). For an
// anonymous protocol the full-split environment is equivariant:
// `(π·x)(π(j), π(E)) = π·(x(j, E))` and `(π·x)(π(j), A) = π·(x(j, A))`, and
// arbitrary early-reader subsets are closed under renaming. The synchronic
// `S^rw` is not (prefixes `[k]` aren't renaming-closed), so only
// `SmLayering::FullSplit` may be quotiented.
impl<P> Symmetric for SmModel<P>
where
    P: SmProtocol + Anonymous,
    P::LocalState: Ord,
    P::Reg: Ord,
{
    fn permute_state(&self, x: &Self::State, perm: &PidPerm) -> Self::State {
        SmState {
            phase: x.phase,
            inputs: perm.permute_vec(&x.inputs),
            regs: perm.permute_vec(&x.regs),
            locals: perm.permute_vec(&x.locals),
            decided: perm.permute_vec(&x.decided),
            phases_done: perm.permute_vec(&x.phases_done),
        }
    }

    fn symmetric_layering(&self) -> bool {
        self.layering == SmLayering::FullSplit
    }

    // Packed fast path first, brute-force minimum as fallback; packability
    // is orbit-invariant, so each orbit sees exactly one rep rule.
    fn canonicalize(&self, x: &Self::State) -> (Self::State, PidPerm) {
        if let Some((rep, pi, _)) = self.packed_canon(x) {
            return (rep, pi);
        }
        canonicalize_by_min(self, x)
    }

    fn canonicalize_with_orbit(&self, x: &Self::State) -> (Self::State, PidPerm, u64) {
        if let Some(out) = self.packed_canon(x) {
            return out;
        }
        let (rep, pi) = canonicalize_by_min(self, x);
        (rep, pi, orbit_size(self, x) as u64)
    }
}

#[cfg(test)]
mod tests {
    use layered_core::{
        check_crash_display, check_fault_independence, check_graded, similarity_report,
        valence_report, ValenceSolver,
    };
    use layered_protocols::SmFloodMin;

    use super::*;

    fn model(n: usize, phases: u16) -> SmModel<SmFloodMin> {
        SmModel::new(n, SmFloodMin::new(phases))
    }

    #[test]
    fn initial_states_form_con0() {
        let m = model(3, 2);
        let inits = m.initial_states();
        assert_eq!(inits.len(), 8);
        assert!(inits.iter().all(|x| x.regs.iter().all(Option::is_none)));
    }

    #[test]
    fn structural_contracts_hold() {
        let m = model(3, 2);
        assert_eq!(check_graded(&m, 2), None);
        assert_eq!(check_fault_independence(&m, 1), None);
        assert_eq!(check_crash_display(&m, 1), None);
    }

    #[test]
    fn action_j_zero_is_j_independent() {
        // The paper: the state from (j, 0) depends on x but not on j.
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let a = m.apply(
            &x,
            SmAction::Staggered {
                j: Pid::new(0),
                k: 0,
            },
        );
        let b = m.apply(
            &x,
            SmAction::Staggered {
                j: Pid::new(2),
                k: 0,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn absent_process_takes_no_phase() {
        let m = model(2, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE]);
        let y = m.apply(&x, SmAction::Absent(Pid::new(0)));
        assert_eq!(y.phases_done, vec![0, 1]);
        assert_eq!(y.locals[0], x.locals[0]);
        assert_eq!(y.regs[0], None, "absent process never wrote");
    }

    #[test]
    fn staggered_k_controls_visibility_of_js_write() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let j = Pid::new(0); // j holds the minimum 0
                             // k = n: every proper process reads early and misses j's write.
        let y = m.apply(&x, SmAction::Staggered { j, k: 3 });
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[2], Some(Value::ONE));
        // j read late and saw everything.
        assert_eq!(y.decided[0], Some(Value::ZERO));
        // k = 0: every proper process reads late and sees j's 0.
        let z = m.apply(&x, SmAction::Staggered { j, k: 0 });
        assert_eq!(z.decided[1], Some(Value::ZERO));
        assert_eq!(z.decided[2], Some(Value::ZERO));
    }

    #[test]
    fn intermediate_k_splits_readers() {
        let m = model(3, 1);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let j = Pid::new(0);
        // k = 2: proper p2 reads early (misses 0), proper p3 reads late.
        let y = m.apply(&x, SmAction::Staggered { j, k: 2 });
        assert_eq!(y.decided[1], Some(Value::ONE));
        assert_eq!(y.decided[2], Some(Value::ZERO));
    }

    #[test]
    fn bridge_lemma_5_3_holds() {
        // x(j,n)(j,A) agrees modulo j with x(j,A)(j,0) — for every x and j.
        let m = model(3, 4);
        for x in m.initial_states() {
            for j in Pid::all(3) {
                assert!(m.bridge_agrees(&x, j), "bridge failed at {x:?}, j={j}");
            }
            // Also one level deeper.
            let x1 = m.apply(
                &x,
                SmAction::Staggered {
                    j: Pid::new(1),
                    k: 1,
                },
            );
            for j in Pid::all(3) {
                assert!(m.bridge_agrees(&x1, j));
            }
        }
    }

    #[test]
    fn subset_y_of_layer_is_similarity_connected() {
        // Lemma 5.3 proof, first step: Y = { x(j,k) : k ≠ A } is similarity
        // connected.
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ZERO]);
        let mut y: Vec<_> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for j in Pid::all(3) {
            for k in 0..=3 {
                let s = m.apply(&x, SmAction::Staggered { j, k });
                if seen.insert(s.clone()) {
                    y.push(s);
                }
            }
        }
        let rep = similarity_report(&m, &y);
        assert!(rep.connected, "Y must be similarity connected");
    }

    #[test]
    fn full_layer_is_valence_connected() {
        // Lemma 5.3(iii): S^rw(x) is valence connected (via the bridge).
        let m = model(3, 2);
        let x = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
        let mut solver = ValenceSolver::new(&m, 2);
        let layer = m.layer(&x);
        let rep = valence_report(&m, &mut solver, &layer);
        assert!(rep.connected, "S^rw(x) must be valence connected");
    }

    #[test]
    fn obligation_override() {
        let m = model(2, 1).with_obligation(1);
        let x = m.initial_state(&[Value::ZERO, Value::ZERO]);
        let y = m.apply(&x, SmAction::Absent(Pid::new(0)));
        // p2 completed 1 phase => obligated; p1 completed 0 => not.
        assert_eq!(m.obligated(&y), vec![Pid::new(1)]);
    }

    #[test]
    fn write_once_decisions() {
        let m = model(2, 1);
        let x = m.initial_state(&[Value::ONE, Value::ONE]);
        // p2 decides 1 after its first phase while p1 is absent...
        let y = m.apply(&x, SmAction::Absent(Pid::new(0)));
        assert_eq!(y.decided[1], Some(Value::ONE));
        // ...then p1 wakes with a 0... cannot happen for inputs (1,1); use a
        // mixed instance instead:
        let x = m.initial_state(&[Value::ZERO, Value::ONE]);
        let y = m.apply(&x, SmAction::Absent(Pid::new(0)));
        assert_eq!(y.decided[1], Some(Value::ONE));
        let z = m.apply(
            &y,
            SmAction::Staggered {
                j: Pid::new(0),
                k: 0,
            },
        );
        // p2 now knows 0, but its decision is latched at 1.
        assert_eq!(z.decided[1], Some(Value::ONE));
        assert_eq!(z.decided[0], Some(Value::ZERO)); // agreement violation!
    }
}
