//! The asynchronous single-writer/multi-reader shared-memory model `M^rw`
//! and the *synchronic layering* `S^rw`, per Section 5.1 of Moses &
//! Rajsbaum, PODC 1998.
//!
//! The crate has two levels:
//!
//! * the **base model** — an interpreter over atomic `write_i` /
//!   `read_i(V_j)` steps obeying the local-phase discipline
//!   ([`replay`], [`SmOp`]);
//! * the **layered submodel** — virtual `W₁ R₁ W₂ R₂` rounds driven by the
//!   environment actions `(j, k)` and `(j, A)` ([`SmModel`], [`SmAction`]).
//!
//! [`layer_action_is_legal_schedule`] ties them together: every layer action
//! replays as a legal atomic schedule, which is the executable content of
//! "`S^rw` generates a layering of `R(A, M^rw)`" (Lemma 5.3(i)). The bridge
//! argument of Lemma 5.3(iii) — `x(j,n) ∼_v x(j,A)` via the common
//! modulo-`j` pair `x(j,n)(j,A)` and `x(j,A)(j,0)` — is
//! [`SmModel::bridge_agrees`]. Corollary 5.4 (impossibility of 1-resilient
//! consensus in `M^rw`, Loui–Abu-Amara) is reproduced by running the
//! [checker](layered_core::check_consensus) and the
//! [bivalent-run engine](layered_core::build_bivalent_run) against any
//! candidate protocol.
//!
//! # Example
//!
//! ```
//! use layered_core::{build_bivalent_run, ValenceSolver};
//! use layered_protocols::SmFloodMin;
//! use layered_async_sm::SmModel;
//!
//! let m = SmModel::new(3, SmFloodMin::new(2));
//! let mut solver = ValenceSolver::new(&m, 2);
//! let run = build_bivalent_run(&mut solver, 1);
//! assert!(run.chain.is_some()); // a bivalent initial state exists
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod interp;
mod model;
mod sim;
mod state;

pub use interp::{layer_action_is_legal_schedule, replay, schedule_for, ScheduleError, SmOp};
pub use model::{SmAction, SmLayering, SmModel};
pub use state::SmState;

/// Stable key identifying this model in certificate stores and query URLs.
pub const MODEL_KEY: &str = "async-sm";

/// Claims the certificate registry can compute and serve for this model:
/// the Theorem 4.2 impossibility witness (Corollary 5.4, Loui–Abu-Amara).
pub const CLAIM_KEYS: &[&str] = &["theorem_4_2"];
