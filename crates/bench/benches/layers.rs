//! Layer-generation throughput: how fast each model produces `S(x)`.
//!
//! This is the inner loop of every analysis in the workspace; the four
//! models differ by orders of magnitude in branching (prefix actions vs.
//! permutation actions), which these benchmarks quantify.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::{LayeredModel, Value};
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

fn mixed_inputs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| if i == 0 { Value::ZERO } else { Value::ONE })
        .collect()
}

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_generation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for n in [3usize, 4, 5] {
        let m = MobileModel::new(n, FloodMin::new(2));
        let x = m.initial_state(&mixed_inputs(n));
        group.bench_with_input(BenchmarkId::new("mobile_s1", n), &n, |b, _| {
            b.iter(|| m.s1_layer(&x).len())
        });

        let m = SmModel::new(n, SmFloodMin::new(2));
        let x = m.initial_state(&mixed_inputs(n));
        group.bench_with_input(BenchmarkId::new("sharedmem_srw", n), &n, |b, _| {
            b.iter(|| m.layer(&x).len())
        });

        if n <= 4 {
            let m = MpModel::new(n, MpFloodMin::new(2));
            let x = m.initial_state(&mixed_inputs(n));
            group.bench_with_input(BenchmarkId::new("msgpassing_sper", n), &n, |b, _| {
                b.iter(|| m.layer(&x).len())
            });
        }

        if n >= 3 {
            let m = CrashModel::new(n, 1, FloodMin::new(2));
            let x = m.initial_state(&mixed_inputs(n));
            group.bench_with_input(BenchmarkId::new("sync_st", n), &n, |b, _| {
                b.iter(|| m.layer(&x).len())
            });
        }
    }
    group.finish();
}

fn bench_full_vs_s1(c: &mut Criterion) {
    // The submodel payoff: S₁ layers vs. the exponential full M^mf layers.
    let mut group = c.benchmark_group("mobile_s1_vs_full");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4] {
        let m = MobileModel::new(n, FloodMin::new(2));
        let x = m.initial_state(&mixed_inputs(n));
        group.bench_with_input(BenchmarkId::new("s1", n), &n, |b, _| {
            b.iter(|| m.s1_layer(&x).len())
        });
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| m.full_layer(&x).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layers, bench_full_vs_s1);
criterion_main!(benches);
