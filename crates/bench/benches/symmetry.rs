//! Cost of symmetry reduction: the Lemma 5.1 layer scan over canonical
//! orbits (`QuotientSolver`) vs. the full interned space (`ValenceSolver`),
//! on the mobile model's equivariant `Full` layering at n = 3 and n = 4.
//!
//! Canonicalization pays n! per interned state to hash and compare n! fewer
//! states; the crossover is where the orbit factor beats the factorial —
//! these benchmarks pin down where that happens for the scan sizes CI runs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_quotient, LayeredModel,
    QuotientSolver, Symmetric, ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::{MobileLayering, MobileModel};

fn sym_model(n: usize, horizon: usize) -> MobileModel<FloodMin> {
    MobileModel::new(n, FloodMin::new(horizon as u16)).with_layering(MobileLayering::Full)
}

fn bench_quotient_vs_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_scan");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    for n in [3usize, 4] {
        let depth = 1usize;
        let horizon = depth + 1;
        let m = sym_model(n, horizon);
        group.bench_function(BenchmarkId::new("full", n), |b| {
            b.iter(|| {
                let mut solver = ValenceSolver::new(&m, horizon);
                scan_layer_valence_connectivity(&mut solver, depth, true).states_seen
            })
        });
        group.bench_function(BenchmarkId::new("quotient", n), |b| {
            b.iter(|| {
                let mut solver = QuotientSolver::new(&m, horizon);
                scan_layer_valence_connectivity_quotient(&mut solver, depth, true).states_seen
            })
        });
    }
    group.finish();
}

fn bench_canonicalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonicalize");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    for n in [3usize, 4, 5] {
        let m = sym_model(n, 2);
        let states = m.initial_states();
        group.bench_function(BenchmarkId::new("initial_states", n), |b| {
            b.iter(|| {
                states
                    .iter()
                    .map(|x| m.canonicalize(x).0)
                    .collect::<Vec<_>>()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quotient_vs_full_scan, bench_canonicalize);
criterion_main!(benches);
