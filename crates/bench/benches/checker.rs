//! Exhaustive consensus-checking cost: the verification half (FloodMin at
//! `t + 1` over all `S^t`-runs) and the refutation half (finding the first
//! violation in each model).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::check_consensus;
use layered_protocols::{FloodMin, FullInfoMin, MpFloodMin, SmFloodMin};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_floodmin_t_plus_1");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    for &(n, t) in &[(3usize, 1usize), (4, 1), (4, 2)] {
        let m = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
        group.bench_with_input(
            BenchmarkId::new("sync", format!("n{n}_t{t}")),
            &(n, t),
            |b, _| b.iter(|| check_consensus(&m, t + 1, 1).passed()),
        );
    }
    group.finish();
}

fn bench_refutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("refute_first_violation");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    group.bench_function("mobile_floodmin2", |b| {
        let m = MobileModel::new(3, FloodMin::new(2));
        b.iter(|| check_consensus(&m, 2, 1).passed())
    });
    group.bench_function("sharedmem_floodmin2", |b| {
        let m = SmModel::new(3, SmFloodMin::new(2));
        b.iter(|| check_consensus(&m, 2, 1).passed())
    });
    group.bench_function("msgpassing_floodmin2", |b| {
        let m = MpModel::new(3, MpFloodMin::new(2));
        b.iter(|| check_consensus(&m, 2, 1).passed())
    });
    group.bench_function("mobile_fullinfo2", |b| {
        // Full-information states are the worst-case workload.
        let m = MobileModel::new(3, FullInfoMin::new(2));
        b.iter(|| check_consensus(&m, 2, 1).passed())
    });
    group.finish();
}

criterion_group!(benches, bench_verification, bench_refutation);
criterion_main!(benches);
