//! Section 7 machinery cost: building task spans, k-thick-connectivity on
//! structured and random complexes, and the generalized valence solver.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_mp::MpModel;
use layered_core::{LayeredModel, Pid, Value};
use layered_protocols::MpFloodMin;
use layered_topology::{covering_bivalent_run, tasks, Complex, Covering, CoveringSolver, Simplex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_complex(n: usize, facets: usize, values: u32, seed: u64) -> Complex {
    let mut rng = StdRng::seed_from_u64(seed);
    Complex::from_facets((0..facets).map(|_| {
        Simplex::from_pairs((0..n).map(|i| (Pid::new(i), Value::new(rng.random_range(0..values)))))
    }))
}

fn bench_task_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_spans");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("consensus_span", n), &n, |b, _| {
            b.iter(|| tasks::consensus(n).full_span().facet_count())
        });
        group.bench_with_input(BenchmarkId::new("2set_span", n), &n, |b, _| {
            b.iter(|| tasks::k_set_agreement(n, 2).full_span().facet_count())
        });
    }
    group.finish();
}

fn bench_thick_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("thick_connectivity");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4] {
        let span = tasks::k_set_agreement(n, 2).full_span();
        group.bench_with_input(BenchmarkId::new("2set", n), &n, |b, _| {
            b.iter(|| span.is_k_thick_connected(n, 1))
        });
    }
    for facets in [16usize, 64, 128] {
        let cpx = random_complex(4, facets, 3, 42);
        group.bench_with_input(BenchmarkId::new("random_n4", facets), &facets, |b, _| {
            b.iter(|| cpx.is_k_thick_connected(4, 1))
        });
    }
    group.finish();
}

fn bench_covering_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering_valence");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("mp_consensus_covering_run", |b| {
        let m = MpModel::new(3, MpFloodMin::new(2));
        let cov = Covering::consensus(3);
        b.iter(|| {
            let mut solver = CoveringSolver::new(&m, &cov, 2);
            let roots = m.initial_states();
            covering_bivalent_run(&mut solver, &roots, 1).reached_target()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_task_spans,
    bench_thick_connectivity,
    bench_covering_solver
);
criterion_main!(benches);
