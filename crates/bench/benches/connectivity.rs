//! Connectivity analysis cost: similarity graphs over `Con₀` and over
//! layers, chain-certificate extraction, and s-diameter sweeps.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_sm::SmModel;
use layered_core::{s_diameter, similarity_chain_between, similarity_report, LayeredModel, Value};
use layered_protocols::{FloodMin, SmFloodMin};
use layered_sync_mobile::MobileModel;
use layered_topology::diameter_sweep;

fn bench_con0(c: &mut Criterion) {
    let mut group = c.benchmark_group("con0_similarity");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4, 5, 6] {
        let m = MobileModel::new(n, FloodMin::new(2));
        let inits = m.initial_states();
        group.bench_with_input(BenchmarkId::new("report", n), &n, |b, _| {
            b.iter(|| similarity_report(&m, &inits).connected)
        });
        group.bench_with_input(BenchmarkId::new("diameter", n), &n, |b, _| {
            b.iter(|| s_diameter(&m, &inits))
        });
    }
    group.finish();
}

fn bench_layer_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_similarity");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4, 5] {
        let m = SmModel::new(n, SmFloodMin::new(2));
        let inputs: Vec<Value> = (0..n)
            .map(|i| if i == 0 { Value::ZERO } else { Value::ONE })
            .collect();
        let layer = m.layer(&m.initial_state(&inputs));
        group.bench_with_input(BenchmarkId::new("srw_layer_report", n), &n, |b, _| {
            b.iter(|| similarity_report(&m, &layer).components)
        });
    }
    group.finish();
}

fn bench_certificates(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_certificates");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let m = MobileModel::new(4, FloodMin::new(2));
    let inits = m.initial_states();
    group.bench_function("extract_and_verify_con0_chain", |b| {
        b.iter(|| {
            let chain =
                similarity_chain_between(&m, &inits, 0, inits.len() - 1).expect("Con₀ connected");
            chain.verify(&m).is_ok()
        })
    });
    group.finish();
}

fn bench_diameter_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter_sweep");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("mobile_n3_depth2", |b| {
        let m = MobileModel::new(3, FloodMin::new(3));
        b.iter(|| diameter_sweep(&m, 2).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_con0,
    bench_layer_connectivity,
    bench_certificates,
    bench_diameter_sweep
);
criterion_main!(benches);
