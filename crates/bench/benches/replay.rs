//! Base-model interpreter cost: replaying synchronic layers as atomic
//! read/write schedules (the Lemma 5.3(i) soundness machinery), and one
//! full layer-soundness sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_sm::{layer_action_is_legal_schedule, replay, schedule_for, SmAction, SmModel};
use layered_core::{LayeredModel, Pid, Value};
use layered_protocols::SmFloodMin;

fn mixed_inputs(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| if i == 0 { Value::ZERO } else { Value::ONE })
        .collect()
}

fn bench_schedule_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("atomic_replay");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [3usize, 4, 5, 6] {
        let m = SmModel::new(n, SmFloodMin::new(2));
        let x = m.initial_state(&mixed_inputs(n));
        let action = SmAction::Staggered {
            j: Pid::new(0),
            k: n / 2,
        };
        let ops = schedule_for(m.protocol(), &x, action);
        group.bench_with_input(BenchmarkId::new("replay_one_layer", n), &n, |b, _| {
            b.iter(|| replay(m.protocol(), &x, &ops, 1).is_ok())
        });
        group.bench_with_input(BenchmarkId::new("layered_apply", n), &n, |b, _| {
            b.iter(|| m.apply(&x, action))
        });
    }
    group.finish();
}

fn bench_soundness_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_soundness_sweep");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("all_actions_n3", |b| {
        let m = SmModel::new(3, SmFloodMin::new(2));
        let x = m.initial_state(&mixed_inputs(3));
        b.iter(|| {
            m.actions()
                .into_iter()
                .all(|a| layer_action_is_legal_schedule(&m, &x, a))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schedule_replay, bench_soundness_sweep);
criterion_main!(benches);
