//! Simulation-runtime throughput: full seeded runs per second.
//!
//! The simulation exists to reach sizes the layer enumerator cannot
//! (`n = 16`, `n = 64`); these benchmarks quantify the cost of a complete
//! adversary-vs-protocol run — move sampling, application, and per-layer
//! safety classification — as `n` grows, and the cost of replaying and
//! shrinking a recorded schedule.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_protocols::FloodMin;
use layered_sim::{shrink, RandomAdversary, SimConfig, Simulator};
use layered_sync_mobile::MobileModel;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_runtime");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for n in [4usize, 16, 64] {
        let model = MobileModel::new(n, FloodMin::new(6));
        let sim = Simulator::new(&model);
        let config = SimConfig::new(0xbead, 1, 6);
        group.bench_with_input(BenchmarkId::new("mobile_run", n), &n, |b, _| {
            b.iter(|| sim.run_one(&config, 0, &mut RandomAdversary).steps)
        });
    }

    let model = MobileModel::new(3, FloodMin::new(2));
    let sim = Simulator::new(&model);
    let run = sim.run_one(&SimConfig::new(0xfade, 1, 4), 0, &mut RandomAdversary);
    group.bench_function("replay_n3", |b| {
        b.iter(|| run.schedule.replay(&model).steps())
    });
    group.bench_function("shrink_n3", |b| {
        b.iter(|| shrink(&model, &run.schedule, run.outcome.class()).len())
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
