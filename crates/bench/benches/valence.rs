//! Valence-solving cost: classifying all initial states (and thereby
//! memoizing the reachable graph) per model and horizon.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::{build_bivalent_run, LayeredModel, ValenceSolver};
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

fn bench_valence_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("valence_classification");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    let horizon = 2usize;

    let m = MobileModel::new(3, FloodMin::new(horizon as u16));
    group.bench_function(BenchmarkId::new("mobile", 3), |b| {
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, horizon);
            m.initial_states()
                .iter()
                .filter(|x| solver.is_bivalent(x))
                .count()
        })
    });

    let m = SmModel::new(3, SmFloodMin::new(horizon as u16));
    group.bench_function(BenchmarkId::new("sharedmem", 3), |b| {
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, horizon);
            m.initial_states()
                .iter()
                .filter(|x| solver.is_bivalent(x))
                .count()
        })
    });

    let m = MpModel::new(3, MpFloodMin::new(horizon as u16));
    group.bench_function(BenchmarkId::new("msgpassing", 3), |b| {
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, horizon);
            m.initial_states()
                .iter()
                .filter(|x| solver.is_bivalent(x))
                .count()
        })
    });

    let m = CrashModel::new(4, 2, FloodMin::new(3));
    group.bench_function(BenchmarkId::new("sync_n4_t2", 4), |b| {
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, 3);
            m.initial_states()
                .iter()
                .filter(|x| solver.is_bivalent(x))
                .count()
        })
    });

    group.finish();
}

fn bench_bivalent_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("bivalent_run_construction");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    group.bench_function("mobile_3_steps2", |b| {
        let m = MobileModel::new(3, FloodMin::new(3));
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, 3);
            build_bivalent_run(&mut solver, 2).reached_target()
        })
    });
    group.bench_function("sharedmem_3_steps2", |b| {
        let m = SmModel::new(3, SmFloodMin::new(3));
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, 3);
            build_bivalent_run(&mut solver, 2).reached_target()
        })
    });
    group.bench_function("msgpassing_3_steps1", |b| {
        let m = MpModel::new(3, MpFloodMin::new(2));
        b.iter(|| {
            let mut solver = ValenceSolver::new(&m, 2);
            build_bivalent_run(&mut solver, 1).reached_target()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_valence_classification, bench_bivalent_run);
criterion_main!(benches);
