//! Cost of the interned engines: valence solving over dense ids vs. a
//! clone-keyed reference memo, and sequential vs. parallel layer scans.
//!
//! The clone-keyed baseline below reimplements what `ValenceSolver` did
//! before the arena refactor — a `HashMap<State, Valences>` memo keyed by
//! full cloned states — so the benchmark measures exactly what interning
//! buys on the hot path.
//!
//! The interned index now hashes with the vendored FxHash
//! (`vendor/fxhash`) instead of the standard library's SipHash; the
//! `interned` series below measures the index with that hasher, while the
//! `clone_keyed` baseline keeps the default SipHash map, so the gap shown
//! here includes the hasher swap.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel, LayeredModel, Pid,
    ValenceSolver, Valences, Value,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::MobileModel;

/// The pre-refactor valence recursion: memo keyed by cloned states.
fn clone_keyed_valences<M: LayeredModel>(
    model: &M,
    horizon: usize,
    memo: &mut HashMap<M::State, Valences>,
    x: &M::State,
) -> Valences {
    if let Some(v) = memo.get(x) {
        return *v;
    }
    let mut flags = Valences::NONE;
    for i in Pid::all(model.num_processes()) {
        if model.failed_at(x, i) {
            continue;
        }
        match model.decision(x, i) {
            Some(Value::ZERO) => flags.zero = true,
            Some(Value::ONE) => flags.one = true,
            _ => {}
        }
    }
    if model.depth(x) < horizon && !(flags.zero && flags.one) {
        for y in model.successors(x) {
            flags = flags.union(clone_keyed_valences(model, horizon, memo, &y));
            if flags.zero && flags.one {
                break;
            }
        }
    }
    memo.insert(x.clone(), flags);
    flags
}

fn bench_intern_vs_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("valence_memo");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    for n in [3usize, 4] {
        let horizon = 2usize;
        let m = MobileModel::new(n, FloodMin::new(horizon as u16));
        group.bench_function(BenchmarkId::new("interned", n), |b| {
            b.iter(|| {
                let mut solver = ValenceSolver::new(&m, horizon);
                m.initial_states()
                    .iter()
                    .filter(|x| solver.is_bivalent(x))
                    .count()
            })
        });
        group.bench_function(BenchmarkId::new("clone_keyed", n), |b| {
            b.iter(|| {
                let mut memo = HashMap::new();
                m.initial_states()
                    .iter()
                    .filter(|x| {
                        let v = clone_keyed_valences(&m, horizon, &mut memo, x);
                        v.zero && v.one
                    })
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_scan_seq_vs_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_scan");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);

    for n in [3usize, 4] {
        let depth = 1usize;
        let horizon = depth + 1;
        let m = MobileModel::new(n, FloodMin::new(horizon as u16));
        group.bench_function(BenchmarkId::new("sequential", n), |b| {
            b.iter(|| {
                let mut solver = ValenceSolver::new(&m, horizon);
                scan_layer_valence_connectivity(&mut solver, depth, true).layers_checked
            })
        });
        group.bench_function(BenchmarkId::new("parallel4", n), |b| {
            b.iter(|| {
                let mut solver = ValenceSolver::new(&m, horizon);
                scan_layer_valence_connectivity_parallel(&mut solver, depth, true, 4).layers_checked
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intern_vs_clone, bench_scan_seq_vs_par);
criterion_main!(benches);
