//! Simulation batches for the experiment harness (`experiments --sim`).
//!
//! Complements the exhaustive experiments: where those enumerate every run
//! on tiny instances, a simulation batch executes seeded adversary-vs-
//! protocol games over all four model families at sizes the enumerator
//! cannot reach, classifies each run with the checker's own predicate, and
//! emits one JSON record per run — the machine-readable stream behind the
//! printed summary table.

use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_cert::{registry, Certificate};
use layered_core::report::Table;
use layered_core::telemetry::json::Json;
use layered_core::telemetry::{MetricsRegistry, Observer, NOOP};
use layered_core::SimModel;
use layered_protocols::{FloodMin, MpFloodMin, MpProtocol, SmFloodMin, SmProtocol, SyncProtocol};
use layered_sim::{
    classify, run_record, shrink, Adversary, MessageDropper, MobileRoamer, RandomAdversary,
    RoundRobinAdversary, SimConfig, Simulator,
};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

/// Configuration of one `--sim` invocation.
#[derive(Clone, Debug)]
pub struct SimBatchConfig {
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Runs per model family (`--runs`).
    pub runs: usize,
    /// Number of processes (`--n`).
    pub n: usize,
    /// Layers per run (`--horizon`).
    pub horizon: usize,
    /// Adversary strategy name (`--adversary`): `random`, `round-robin`,
    /// `roamer`, or `dropper`.
    pub adversary: String,
}

impl Default for SimBatchConfig {
    fn default() -> Self {
        SimBatchConfig {
            seed: 0xc0ffee,
            runs: 25,
            n: 4,
            horizon: 8,
            adversary: "random".to_string(),
        }
    }
}

/// The result of a simulation batch: the summary table and one JSON record
/// per run, in run order.
#[derive(Clone, Debug)]
pub struct SimBatch {
    /// Per-model-family outcome summary.
    pub table: Table,
    /// One record per simulated run, plus one `"experiment": "sim-shrink"`
    /// record per violating run with its ddmin-minimized schedule (the
    /// `--json` stream, canonicalized).
    pub records: Vec<Json>,
    /// One schedule certificate per violating run (the ddmin-shrunk
    /// reproduction), ready for a `--store` directory.
    pub certificates: Vec<Certificate>,
    /// Whether every shrunk schedule re-verified: replay reproduces the
    /// original violation class and, at enumerable sizes, the replayed
    /// trace validates as a genuine `S`-execution. `false` is a harness
    /// bug, not a model finding — the `--sim` mode exits nonzero on it.
    pub verified: bool,
    /// Total faults injected across the batch.
    pub faults: u64,
    /// Telemetry counters recorded by the runtime.
    pub metrics: layered_core::telemetry::MetricsSnapshot,
}

/// Naming and reconstruction parameters of one model family in the batch:
/// the short name used in sim records, the certificate-store model key,
/// and what it takes to rebuild the model when re-verifying (protocol
/// deadline, crash resilience).
struct FamilyIdentity<'a> {
    sim_name: &'static str,
    cert_model: &'static str,
    protocol: &'a str,
    deadline: u16,
    resilience: Option<usize>,
}

/// Tallies of one family's batch.
struct FamilyTally {
    decided: usize,
    undecided: usize,
    agreement: usize,
    validity: usize,
    faults: usize,
}

/// Everything a family batch feeds back into the harness besides its
/// tally: the `--json` records, the shrunk-schedule certificates, and the
/// re-verification verdict.
struct FamilyOutput<'a> {
    records: &'a mut Vec<Json>,
    certificates: &'a mut Vec<Certificate>,
    verified: &'a mut bool,
}

fn run_family<M, A>(
    model: &M,
    family: &FamilyIdentity<'_>,
    observer: &dyn Observer,
    cfg: &SimBatchConfig,
    make_adversary: impl FnMut() -> A,
    out: &mut FamilyOutput<'_>,
) -> FamilyTally
where
    M: SimModel,
    A: Adversary<M>,
{
    let sim = Simulator::with_observer(model, observer);
    let config = SimConfig::new(cfg.seed, cfg.runs, cfg.horizon);
    let mut tally = FamilyTally {
        decided: 0,
        undecided: 0,
        agreement: 0,
        validity: 0,
        faults: 0,
    };
    let mut make_adversary = make_adversary;
    let adversary_name = make_adversary().name();
    for run in sim.run_many(&config, &mut make_adversary) {
        match run.outcome.class() {
            "decided" => tally.decided += 1,
            "undecided" => tally.undecided += 1,
            "agreement" => tally.agreement += 1,
            _ => tally.validity += 1,
        }
        tally.faults += run.faults;
        out.records.push(run_record(
            model,
            &run,
            family.sim_name,
            family.protocol,
            &adversary_name,
        ));
        if !run.outcome.is_violation() {
            continue;
        }
        // Satellite: every violation ships with its ddmin-shrunk
        // reproduction — as a canonicalized `--json` record (the same
        // stream as the runs) and as a storable schedule certificate.
        let class = run.outcome.class();
        let small = shrink(model, &run.schedule, class);
        let replayed = small.replay(model);
        let replays_ok = classify(model, replayed.states()).class() == class;
        out.records.push(
            Json::Object(vec![
                ("experiment".to_string(), Json::from("sim-shrink")),
                ("model".to_string(), Json::from(family.sim_name)),
                ("n".to_string(), Json::from(model.num_processes() as u64)),
                ("run".to_string(), Json::from(run.index as u64)),
                ("outcome".to_string(), Json::from(class)),
                (
                    "original_len".to_string(),
                    Json::from(run.schedule.len() as u64),
                ),
                ("shrunk_len".to_string(), Json::from(small.len() as u64)),
                ("schedule".to_string(), small.to_json_full(model)),
            ])
            .canonicalize(),
        );
        match registry::schedule_certificate(
            family.cert_model,
            model,
            family.deadline,
            family.resilience,
            class,
            &small,
        ) {
            Ok(cert) => {
                // Re-verify through the same path the query server uses:
                // replay class match, plus trace validation at enumerable
                // sizes. A failure here is a harness bug and fails the
                // batch.
                if !replays_ok || registry::verify(&cert, &NOOP).is_err() {
                    *out.verified = false;
                }
                out.certificates.push(cert);
            }
            Err(_) => *out.verified = false,
        }
    }
    tally
}

/// Runs `cfg.runs` seeded simulations in each of the four model families
/// and summarizes the outcome classes.
///
/// Every record is a pure function of `(cfg.seed, run index)`; re-invoking
/// with the same configuration reproduces the batch byte-for-byte.
#[must_use]
pub fn sim_batch(cfg: &SimBatchConfig) -> SimBatch {
    let registry = MetricsRegistry::new();
    let mut records = Vec::new();
    let mut table = Table::new(
        &format!(
            "Simulation: {} runs/model, n = {}, horizon = {}, seed = {}, adversary = {}",
            cfg.runs, cfg.n, cfg.horizon, cfg.seed, cfg.adversary
        ),
        &[
            "model",
            "protocol",
            "decided",
            "undecided",
            "agreement",
            "validity",
            "faults",
        ],
    );
    let n = cfg.n;
    let deadline = u16::try_from(cfg.horizon).unwrap_or(u16::MAX).max(1);
    let mut certificates = Vec::new();
    let mut verified = true;

    let mut families: Vec<(&str, String, FamilyTally)> = Vec::new();

    {
        let protocol = FloodMin::new(deadline);
        let name = SyncProtocol::name(&protocol);
        let model = MobileModel::new(n, protocol);
        let identity = FamilyIdentity {
            sim_name: "mobile",
            cert_model: layered_sync_mobile::MODEL_KEY,
            protocol: &name,
            deadline,
            resilience: None,
        };
        let mut out = FamilyOutput {
            records: &mut records,
            certificates: &mut certificates,
            verified: &mut verified,
        };
        let tally = dispatch(&model, &identity, &registry, cfg, &mut out);
        families.push(("mobile (S1)", name, tally));
    }
    {
        let protocol = FloodMin::new(deadline);
        let name = SyncProtocol::name(&protocol);
        // CrashModel requires 1 <= t <= n - 2 (so n >= 3).
        let t = (n / 2).clamp(1, n - 2);
        let model = CrashModel::new(n, t, protocol);
        let identity = FamilyIdentity {
            sim_name: "crash",
            cert_model: layered_sync_crash::MODEL_KEY,
            protocol: &name,
            deadline,
            resilience: Some(t),
        };
        let mut out = FamilyOutput {
            records: &mut records,
            certificates: &mut certificates,
            verified: &mut verified,
        };
        let tally = dispatch(&model, &identity, &registry, cfg, &mut out);
        families.push(("crash (S^t)", name, tally));
    }
    {
        let protocol = SmFloodMin::new(deadline);
        let name = SmProtocol::name(&protocol);
        let model = SmModel::new(n, protocol);
        let identity = FamilyIdentity {
            sim_name: "sm",
            cert_model: layered_async_sm::MODEL_KEY,
            protocol: &name,
            deadline,
            resilience: None,
        };
        let mut out = FamilyOutput {
            records: &mut records,
            certificates: &mut certificates,
            verified: &mut verified,
        };
        let tally = dispatch(&model, &identity, &registry, cfg, &mut out);
        families.push(("shared memory (S^rw)", name, tally));
    }
    {
        let protocol = MpFloodMin::new(deadline);
        let name = MpProtocol::name(&protocol);
        let model = MpModel::new(n, protocol);
        let identity = FamilyIdentity {
            sim_name: "mp",
            cert_model: layered_async_mp::MODEL_KEY,
            protocol: &name,
            deadline,
            resilience: None,
        };
        let mut out = FamilyOutput {
            records: &mut records,
            certificates: &mut certificates,
            verified: &mut verified,
        };
        let tally = dispatch(&model, &identity, &registry, cfg, &mut out);
        families.push(("message passing (S^per)", name, tally));
    }

    let mut faults = 0u64;
    for (family, protocol, tally) in &families {
        faults += tally.faults as u64;
        table.row_owned(vec![
            (*family).to_string(),
            protocol.clone(),
            tally.decided.to_string(),
            tally.undecided.to_string(),
            tally.agreement.to_string(),
            tally.validity.to_string(),
            tally.faults.to_string(),
        ]);
    }

    SimBatch {
        table,
        records,
        certificates,
        verified,
        faults,
        metrics: registry.snapshot(),
    }
}

/// Runs one family under the adversary named in `cfg`.
fn dispatch<M: SimModel>(
    model: &M,
    family: &FamilyIdentity<'_>,
    observer: &dyn Observer,
    cfg: &SimBatchConfig,
    out: &mut FamilyOutput<'_>,
) -> FamilyTally {
    match cfg.adversary.as_str() {
        "round-robin" => run_family(
            model,
            family,
            observer,
            cfg,
            || RoundRobinAdversary::new(2),
            out,
        ),
        "roamer" => run_family(model, family, observer, cfg, MobileRoamer::default, out),
        "dropper" => run_family(
            model,
            family,
            observer,
            cfg,
            || MessageDropper::new(300),
            out,
        ),
        _ => run_family(model, family, observer, cfg, || RandomAdversary, out),
    }
}

/// Whether `name` is a recognized `--adversary` value.
#[must_use]
pub fn known_adversary(name: &str) -> bool {
    matches!(name, "random" | "round-robin" | "roamer" | "dropper")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_reproducible() {
        let cfg = SimBatchConfig {
            runs: 3,
            n: 3,
            horizon: 3,
            ..SimBatchConfig::default()
        };
        let a = sim_batch(&cfg);
        let b = sim_batch(&cfg);
        let sim_records = a
            .records
            .iter()
            .filter(|r| r.get("experiment").and_then(Json::as_str) == Some("sim"))
            .count();
        assert_eq!(sim_records, 4 * 3);
        let render = |batch: &SimBatch| {
            batch
                .records
                .iter()
                .map(Json::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn telemetry_counts_runs_and_steps() {
        let cfg = SimBatchConfig {
            runs: 2,
            n: 3,
            horizon: 2,
            ..SimBatchConfig::default()
        };
        let batch = sim_batch(&cfg);
        assert_eq!(batch.metrics.counter("sim.runs"), 4 * 2);
        assert!(batch.metrics.counter("sim.steps") <= 4 * 2 * 2);
        assert!(batch.metrics.counter("sim.steps") > 0);
    }

    #[test]
    fn adversary_names_validate() {
        assert!(known_adversary("random"));
        assert!(known_adversary("dropper"));
        assert!(!known_adversary("omniscient"));
    }
}
