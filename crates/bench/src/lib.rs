//! Experiment harness regenerating every numbered claim of the paper.
//!
//! The paper has no tables or figures; its reproducible units are the
//! lemmas, theorems and corollaries. Each experiment here verifies one of
//! them by exhaustive enumeration on finite instances and prints a
//! paper-vs-measured table. Run all of them with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p layered-bench --bin experiments          # full
//! cargo run --release -p layered-bench --bin experiments -- quick # small
//! ```
//!
//! The functions are also exposed as a library so the workspace integration
//! tests can assert that every experiment reports `ok`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use layered_core::report::Table;
use layered_core::telemetry::json::Json;
use layered_core::telemetry::{Fanout, MetricsRegistry, MetricsSnapshot, Observer, Span, NOOP};

mod experiments {
    pub mod certstore;
    pub mod decision_tasks;
    pub mod foundations;
    pub mod impossibility;
    pub mod resume;
    pub mod scaling;
    pub mod synchronous;
}
pub mod regress;
pub mod simruns;

pub use experiments::certstore::cert_store;
pub use experiments::decision_tasks::{
    bivalence_profile, covering_sanity, diameter, lemma_7_1, lemma_7_4, task_solvability,
};
pub use experiments::foundations::{census, lemma_3_1, lemma_3_6, theorem_4_2};
pub use experiments::impossibility::{iis, message_passing, mobile, shared_memory};
pub use experiments::resume::resume_roundtrip;
pub use experiments::scaling::{
    interned_scan, interned_scan_certified, interned_scan_with, quotient_scan,
    quotient_scan_certified, quotient_scan_with, ScanConfig, QUOTIENT_SNAPSHOT_FILE,
    STATE_SNAPSHOT_FILE,
};
pub use experiments::synchronous::{early_stopping, lemma_6_4, lemmas_6_1_6_2, lower_bound};
pub use simruns::{known_adversary, sim_batch, SimBatch, SimBatchConfig};

/// How large an instance each experiment should use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Small instances (CI-friendly, sub-second each).
    Quick,
    /// The sizes reported in EXPERIMENTS.md.
    Full,
}

/// One experiment: a paper claim, the measured table, an overall pass/fail
/// verdict, and the engine telemetry gathered while producing it.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Experiment identifier (`E-<claim>`): see DESIGN.md's index.
    pub id: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// The measured table.
    pub table: Table,
    /// Whether every row matched the paper's claim.
    pub ok: bool,
    /// Engine counters, gauges, spans and events recorded during the run.
    pub metrics: MetricsSnapshot,
}

impl Experiment {
    /// Wall-clock time spent producing the table, in nanoseconds.
    ///
    /// Derived from the `experiment.run` span that [`measured`] wraps around
    /// every experiment body, so the JSON record's top-level `wall_ns` and
    /// `metrics.spans["experiment.run"]` can never disagree.
    #[must_use]
    pub fn wall_nanos(&self) -> u64 {
        self.metrics.span_total_ns("experiment.run")
    }

    /// The experiment as one machine-readable JSON record — the twin of the
    /// printed table. The top-level fields are stable: `id`, `claim`, `ok`,
    /// `wall_ns`, the headline engine counters (`states_visited`,
    /// `dedup_hits`, `valence_cache_hits`, `max_frontier_width`; `0` when an
    /// experiment never touches that engine), and the full `metrics` dump.
    ///
    /// Records are canonicalized (object keys sorted recursively) before
    /// rendering, so two runs of the same experiment produce byte-identical
    /// records modulo the documented timing fields (`wall_ns`, span
    /// `total_ns`, and the `*.wall_ns` gauges) — see the byte-stability
    /// test in `crates/bench/tests/byte_stability.rs`.
    #[must_use]
    pub fn json_record(&self) -> Json {
        Json::Object(vec![
            ("id".into(), Json::String(self.id.to_string())),
            ("claim".into(), Json::String(self.claim.to_string())),
            ("ok".into(), Json::from(self.ok)),
            ("wall_ns".into(), Json::from(self.wall_nanos())),
            (
                "states_visited".into(),
                Json::from(self.metrics.counter("engine.states_visited")),
            ),
            (
                "dedup_hits".into(),
                Json::from(self.metrics.counter("engine.dedup_hits")),
            ),
            (
                "valence_cache_hits".into(),
                Json::from(self.metrics.counter("valence.memo_hits")),
            ),
            (
                "max_frontier_width".into(),
                Json::from(self.metrics.gauge_max("engine.frontier_width")),
            ),
            ("metrics".into(), self.metrics.to_json()),
        ])
        .canonicalize()
    }
}

/// Runs an experiment body against a fresh [`MetricsRegistry`], timing it
/// via the `experiment.run` span and freezing the telemetry into the
/// returned [`Experiment`].
pub(crate) fn measured(
    id: &'static str,
    claim: &'static str,
    body: impl FnOnce(&dyn Observer) -> (Table, bool),
) -> Experiment {
    measured_with(id, claim, &NOOP, body)
}

/// [`measured`] with a second observer teed alongside the registry —
/// the hook the `--trace` / `--profile` modes use to capture span records
/// without disturbing the metrics snapshot.
pub(crate) fn measured_with(
    id: &'static str,
    claim: &'static str,
    extra: &dyn Observer,
    body: impl FnOnce(&dyn Observer) -> (Table, bool),
) -> Experiment {
    let registry = MetricsRegistry::new();
    let (table, ok) = {
        let targets: [&dyn Observer; 2] = [&registry, extra];
        let fan = Fanout::new(&targets);
        let _run_span = Span::enter(&fan, "experiment.run");
        body(&fan)
    };
    Experiment {
        id,
        claim,
        table,
        ok,
        metrics: registry.snapshot(),
    }
}

/// Runs every experiment at the given scope, in paper order.
#[must_use]
pub fn all_experiments(scope: Scope) -> Vec<Experiment> {
    vec![
        lemma_3_1(scope),
        lemma_3_6(scope),
        theorem_4_2(scope),
        census(scope),
        mobile(scope),
        shared_memory(scope),
        message_passing(scope),
        iis(scope),
        lower_bound(scope),
        lemmas_6_1_6_2(scope),
        lemma_6_4(scope),
        early_stopping(scope),
        task_solvability(scope),
        lemma_7_1(scope),
        lemma_7_4(scope),
        bivalence_profile(scope),
        covering_sanity(scope),
        diameter(scope),
        cert_store(scope),
    ]
}
