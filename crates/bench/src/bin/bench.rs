//! Bench tooling. Currently one subcommand:
//!
//! ```text
//! bench regress [--baseline <path>]... [--fresh <path>] [--out <path>]
//!               [--wall-ratio-x100 <k>] [--wall-floor-ms <k>]
//!               [--counter-ratio-x100 <k>]
//! ```
//!
//! Compares a fresh run of the scan experiments (E-scan at n = 4, E-sym at
//! n = 4, 5 and 6 — the instances the committed records cover) against the
//! best committed `BENCH_*.json` baseline per experiment, with the noise
//! tolerances documented in [`layered_bench::regress`]. Exits 1 on a
//! regression, 2 on usage or I/O errors.
//!
//! * `--baseline <path>` — a committed record file; repeatable. Defaults to
//!   every `BENCH_*.json` in the current directory.
//! * `--fresh <path>` — gate the records in `<path>` instead of running the
//!   experiments (the hook the negative test uses).
//! * `--out <path>` — write the fresh records to `<path>` (the next
//!   committed `BENCH_PR<k>.json`).
//! * `--lint-budget-ms <k>` — wall budget for the lint gate (default
//!   10000; 0 disables it). The gate runs the whole-workspace
//!   static-analysis pass — both tiers, including the call-graph rules —
//!   and fails if it regresses past the budget or finds anything: the
//!   lint must stay cheap enough to run on every push.

use layered_bench::regress::{
    collect_baselines, compare, verdict_table, BenchRecord, Tolerance, Verdict,
};
use layered_bench::{interned_scan, quotient_scan, resume_roundtrip, ScanConfig};

struct Options {
    baselines: Vec<String>,
    fresh: Option<String>,
    out: Option<String>,
    tol: Tolerance,
    lint_budget_ms: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("regress") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}` (expected `regress`)")),
        None => return Err("missing subcommand (expected `regress`)".to_string()),
    }
    let mut opts = Options {
        baselines: Vec::new(),
        fresh: None,
        out: None,
        tol: Tolerance::default(),
        lint_budget_ms: 10_000,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--baseline" => opts.baselines.push(value("--baseline")?),
            "--fresh" => opts.fresh = Some(value("--fresh")?),
            "--out" => opts.out = Some(value("--out")?),
            "--wall-ratio-x100" => {
                opts.tol.wall_ratio_x100 =
                    numeric("--wall-ratio-x100", &value("--wall-ratio-x100")?)?;
            }
            "--wall-floor-ms" => {
                opts.tol.wall_floor_ns =
                    numeric("--wall-floor-ms", &value("--wall-floor-ms")?)? * 1_000_000;
            }
            "--counter-ratio-x100" => {
                opts.tol.counter_ratio_x100 =
                    numeric("--counter-ratio-x100", &value("--counter-ratio-x100")?)?;
            }
            "--lint-budget-ms" => {
                opts.lint_budget_ms = numeric("--lint-budget-ms", &value("--lint-budget-ms")?)?;
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if opts.baselines.is_empty() {
        opts.baselines = discover_baselines()?;
    }
    if opts.baselines.is_empty() {
        return Err("no baselines: no --baseline given and no BENCH_*.json here".to_string());
    }
    Ok(opts)
}

fn numeric(flag: &str, text: &str) -> Result<u64, String> {
    text.parse::<u64>().map_err(|e| format!("{flag}: {e}"))
}

/// The lint wall-time gate: the whole-workspace static-analysis pass —
/// both tiers, including call-graph construction — must stay within the
/// budget *and* clean. A lint that outgrows its budget stops being run
/// on every push, which is how determinism bugs sneak back in.
fn lint_gate(budget_ms: u64) -> Result<(), String> {
    let root = layered_lint::default_root();
    let t0 = layered_core::telemetry::clock::monotonic_ns();
    let report = layered_lint::lint_workspace(&root);
    let wall_ms = (layered_core::telemetry::clock::monotonic_ns() - t0) / 1_000_000;
    println!(
        "Lint gate: {} file(s), {} finding(s), {} suppressed, {wall_ms} ms (budget {budget_ms} ms).",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
    );
    if report.files_scanned < 50 {
        return Err(format!(
            "lint walked only {} file(s) under {root:?} — wrong working directory?",
            report.files_scanned
        ));
    }
    if !report.is_clean() {
        return Err(format!(
            "{} unsuppressed lint finding(s) — run `cargo run -p layered-lint` for the list",
            report.findings.len()
        ));
    }
    if wall_ms > budget_ms {
        return Err(format!(
            "lint pass took {wall_ms} ms > {budget_ms} ms budget — the pass must stay cheap \
             enough for every push"
        ));
    }
    Ok(())
}

/// Every `BENCH_*.json` in the current directory, sorted for determinism.
fn discover_baselines() -> Result<Vec<String>, String> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(".").map_err(|e| format!("reading .: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading .: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            found.push(name);
        }
    }
    found.sort();
    Ok(found)
}

fn load_records(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchRecord::parse_lines(&text).map_err(|e| format!("{path}: {e}"))
}

/// Runs the scan experiments the committed baselines cover and returns
/// their JSON record lines.
fn fresh_run() -> Vec<String> {
    let scan = ScanConfig::default();
    let sym4 = ScanConfig {
        quotient: true,
        ..ScanConfig::default()
    };
    let sym5 = ScanConfig {
        n: 5,
        quotient: true,
        ..ScanConfig::default()
    };
    let sym6 = ScanConfig {
        n: 6,
        quotient: true,
        ..ScanConfig::default()
    };
    [
        interned_scan(&scan),
        quotient_scan(&sym4),
        quotient_scan(&sym5),
        quotient_scan(&sym6),
        resume_roundtrip(&ScanConfig::default()),
    ]
    .iter()
    .map(|e| e.json_record().to_string())
    .collect()
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench regress [--baseline <path>]... [--fresh <path>] [--out <path>] [--wall-ratio-x100 <k>] [--wall-floor-ms <k>] [--counter-ratio-x100 <k>] [--lint-budget-ms <k>]"
            );
            std::process::exit(2);
        }
    };

    let mut baseline_records = Vec::new();
    for path in &opts.baselines {
        match load_records(path) {
            Ok(mut records) => {
                println!("Loaded {} baseline record(s) from {path}.", records.len());
                baseline_records.append(&mut records);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
    let baselines = collect_baselines(&baseline_records);

    let fresh_lines = match &opts.fresh {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(2);
            }
        },
        None => {
            println!("Running fresh scan experiments (E-scan n=4, E-sym n=4/5/6, E-resume n=4)...");
            fresh_run()
        }
    };
    let fresh = match BenchRecord::parse_lines(&fresh_lines.join("\n")) {
        Ok(records) => records,
        Err(msg) => {
            eprintln!("error: fresh records: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, fresh_lines.join("\n") + "\n") {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("Wrote {} fresh record(s) to {path}.", fresh_lines.len());
    }

    let verdicts = compare(&baselines, &fresh, opts.tol);
    println!("{}", verdict_table(&verdicts));
    let failed: Vec<&Verdict> = verdicts.iter().filter(|v| !v.passed()).collect();
    if failed.is_empty() {
        println!("No regressions against the committed baselines.");
    } else {
        println!("{} experiment(s) regressed:", failed.len());
        for v in &failed {
            for reason in &v.failures {
                println!("  {}: {reason}", v.key);
            }
        }
        std::process::exit(1);
    }

    if opts.lint_budget_ms > 0 {
        if let Err(msg) = lint_gate(opts.lint_budget_ms) {
            eprintln!("error: lint gate: {msg}");
            std::process::exit(1);
        }
    }
}
