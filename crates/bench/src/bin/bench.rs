//! Bench tooling. Currently one subcommand:
//!
//! ```text
//! bench regress [--baseline <path>]... [--fresh <path>] [--out <path>]
//!               [--wall-ratio-x100 <k>] [--wall-floor-ms <k>]
//!               [--counter-ratio-x100 <k>]
//! ```
//!
//! Compares a fresh run of the scan experiments (E-scan at n = 4, E-sym at
//! n = 4, 5 and 6 — the instances the committed records cover) against the
//! best committed `BENCH_*.json` baseline per experiment, with the noise
//! tolerances documented in [`layered_bench::regress`]. Exits 1 on a
//! regression, 2 on usage or I/O errors.
//!
//! * `--baseline <path>` — a committed record file; repeatable. Defaults to
//!   every `BENCH_*.json` in the current directory.
//! * `--fresh <path>` — gate the records in `<path>` instead of running the
//!   experiments (the hook the negative test uses).
//! * `--out <path>` — write the fresh records to `<path>` (the next
//!   committed `BENCH_PR<k>.json`).

use layered_bench::regress::{
    collect_baselines, compare, verdict_table, BenchRecord, Tolerance, Verdict,
};
use layered_bench::{interned_scan, quotient_scan, resume_roundtrip, ScanConfig};

struct Options {
    baselines: Vec<String>,
    fresh: Option<String>,
    out: Option<String>,
    tol: Tolerance,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("regress") => {}
        Some(other) => return Err(format!("unknown subcommand `{other}` (expected `regress`)")),
        None => return Err("missing subcommand (expected `regress`)".to_string()),
    }
    let mut opts = Options {
        baselines: Vec::new(),
        fresh: None,
        out: None,
        tol: Tolerance::default(),
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} requires a value"));
        match arg.as_str() {
            "--baseline" => opts.baselines.push(value("--baseline")?),
            "--fresh" => opts.fresh = Some(value("--fresh")?),
            "--out" => opts.out = Some(value("--out")?),
            "--wall-ratio-x100" => {
                opts.tol.wall_ratio_x100 =
                    numeric("--wall-ratio-x100", &value("--wall-ratio-x100")?)?;
            }
            "--wall-floor-ms" => {
                opts.tol.wall_floor_ns =
                    numeric("--wall-floor-ms", &value("--wall-floor-ms")?)? * 1_000_000;
            }
            "--counter-ratio-x100" => {
                opts.tol.counter_ratio_x100 =
                    numeric("--counter-ratio-x100", &value("--counter-ratio-x100")?)?;
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if opts.baselines.is_empty() {
        opts.baselines = discover_baselines()?;
    }
    if opts.baselines.is_empty() {
        return Err("no baselines: no --baseline given and no BENCH_*.json here".to_string());
    }
    Ok(opts)
}

fn numeric(flag: &str, text: &str) -> Result<u64, String> {
    text.parse::<u64>().map_err(|e| format!("{flag}: {e}"))
}

/// Every `BENCH_*.json` in the current directory, sorted for determinism.
fn discover_baselines() -> Result<Vec<String>, String> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(".").map_err(|e| format!("reading .: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading .: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            found.push(name);
        }
    }
    found.sort();
    Ok(found)
}

fn load_records(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchRecord::parse_lines(&text).map_err(|e| format!("{path}: {e}"))
}

/// Runs the scan experiments the committed baselines cover and returns
/// their JSON record lines.
fn fresh_run() -> Vec<String> {
    let scan = ScanConfig::default();
    let sym4 = ScanConfig {
        quotient: true,
        ..ScanConfig::default()
    };
    let sym5 = ScanConfig {
        n: 5,
        quotient: true,
        ..ScanConfig::default()
    };
    let sym6 = ScanConfig {
        n: 6,
        quotient: true,
        ..ScanConfig::default()
    };
    [
        interned_scan(&scan),
        quotient_scan(&sym4),
        quotient_scan(&sym5),
        quotient_scan(&sym6),
        resume_roundtrip(&ScanConfig::default()),
    ]
    .iter()
    .map(|e| e.json_record().to_string())
    .collect()
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench regress [--baseline <path>]... [--fresh <path>] [--out <path>] [--wall-ratio-x100 <k>] [--wall-floor-ms <k>] [--counter-ratio-x100 <k>]"
            );
            std::process::exit(2);
        }
    };

    let mut baseline_records = Vec::new();
    for path in &opts.baselines {
        match load_records(path) {
            Ok(mut records) => {
                println!("Loaded {} baseline record(s) from {path}.", records.len());
                baseline_records.append(&mut records);
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
    let baselines = collect_baselines(&baseline_records);

    let fresh_lines = match &opts.fresh {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(2);
            }
        },
        None => {
            println!("Running fresh scan experiments (E-scan n=4, E-sym n=4/5/6, E-resume n=4)...");
            fresh_run()
        }
    };
    let fresh = match BenchRecord::parse_lines(&fresh_lines.join("\n")) {
        Ok(records) => records,
        Err(msg) => {
            eprintln!("error: fresh records: {msg}");
            std::process::exit(2);
        }
    };

    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, fresh_lines.join("\n") + "\n") {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("Wrote {} fresh record(s) to {path}.", fresh_lines.len());
    }

    let verdicts = compare(&baselines, &fresh, opts.tol);
    println!("{}", verdict_table(&verdicts));
    let failed: Vec<&Verdict> = verdicts.iter().filter(|v| !v.passed()).collect();
    if failed.is_empty() {
        println!("No regressions against the committed baselines.");
    } else {
        println!("{} experiment(s) regressed:", failed.len());
        for v in &failed {
            for reason in &v.failures {
                println!("  {}: {reason}", v.key);
            }
        }
        std::process::exit(1);
    }
}
