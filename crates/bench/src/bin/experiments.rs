//! Runs every experiment and prints its paper-vs-measured table.
//!
//! Usage:
//!
//! ```text
//! experiments [quick] [--json <path>] [--metrics]
//! ```
//!
//! * `quick` — small CI-friendly instances (default: the full sizes).
//! * `--json <path>` — additionally write one JSON record per experiment to
//!   `<path>`, one object per line (the machine-readable twin of every
//!   table; see `Experiment::json_record`).
//! * `--metrics` — print each experiment's engine counters after its table.

use std::io::Write;

use layered_bench::{all_experiments, Scope};

struct Options {
    scope: Scope,
    json_path: Option<String>,
    metrics: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scope: Scope::Full,
        json_path: None,
        metrics: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" => opts.scope = Scope::Quick,
            "full" => opts.scope = Scope::Full,
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json requires a path argument")?);
            }
            "--metrics" => opts.metrics = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: experiments [quick|full] [--json <path>] [--metrics]");
            std::process::exit(2);
        }
    };
    println!(
        "Layered analysis of consensus — experiment harness ({:?} scope)",
        opts.scope
    );
    println!("Reproducing Moses & Rajsbaum, PODC 1998, claim by claim.\n");
    let experiments = all_experiments(opts.scope);
    let mut failures = 0;
    for exp in &experiments {
        println!("[{}] {}", exp.id, exp.claim);
        println!("{}", exp.table);
        if opts.metrics {
            println!("  wall time: {:.3} ms", exp.wall_nanos as f64 / 1e6);
            for (name, total) in &exp.metrics.counters {
                println!("  {name}: {total}");
            }
            for (name, g) in &exp.metrics.gauges {
                println!("  {name}: last {} / max {}", g.last, g.max);
            }
        }
        if exp.ok {
            println!("  => OK\n");
        } else {
            failures += 1;
            println!("  => MISMATCH\n");
        }
    }
    if let Some(path) = &opts.json_path {
        match std::fs::File::create(path) {
            Ok(file) => {
                let mut out = std::io::BufWriter::new(file);
                for exp in &experiments {
                    if let Err(e) = writeln!(out, "{}", exp.json_record()) {
                        eprintln!("error: writing {path}: {e}");
                        std::process::exit(2);
                    }
                }
                if let Err(e) = out.flush() {
                    eprintln!("error: flushing {path}: {e}");
                    std::process::exit(2);
                }
                println!("Wrote {} JSON records to {path}.", experiments.len());
            }
            Err(e) => {
                eprintln!("error: creating {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if failures == 0 {
        println!("All experiments match the paper's claims.");
    } else {
        println!("{failures} experiment(s) deviated from the paper's claims.");
        std::process::exit(1);
    }
}
