//! Runs every experiment and prints its paper-vs-measured table.

use layered_bench::{all_experiments, Scope};

fn main() {
    let scope = if std::env::args().any(|a| a == "quick") {
        Scope::Quick
    } else {
        Scope::Full
    };
    println!("Layered analysis of consensus — experiment harness ({scope:?} scope)");
    println!("Reproducing Moses & Rajsbaum, PODC 1998, claim by claim.\n");
    let mut failures = 0;
    for exp in all_experiments(scope) {
        println!("[{}] {}", exp.id, exp.claim);
        println!("{}", exp.table);
        if exp.ok {
            println!("  => OK\n");
        } else {
            failures += 1;
            println!("  => MISMATCH\n");
        }
    }
    if failures == 0 {
        println!("All experiments match the paper's claims.");
    } else {
        println!("{failures} experiment(s) deviated from the paper's claims.");
        std::process::exit(1);
    }
}
