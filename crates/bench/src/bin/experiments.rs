//! Runs every experiment and prints its paper-vs-measured table.
//!
//! Usage:
//!
//! ```text
//! experiments [quick] [--json <path>] [--metrics] [--store <dir>]
//! experiments --sim [--seed <u64>] [--runs <k>] [--n <k>] [--horizon <k>]
//!             [--adversary <name>] [--json <path>] [--metrics] [--store <dir>]
//! experiments --scan [--quotient] [--boxed] [--n <k>] [--depth <k>]
//!             [--threads <k>] [--horizon <k>] [--snapshot <dir>]
//!             [--resume <dir>] [--json <path>] [--metrics] [--trace <path>]
//!             [--profile] [--heartbeat-ms <k>] [--store <dir>]
//! ```
//!
//! * `quick` — small CI-friendly instances (default: the full sizes).
//! * `--json <path>` — additionally write one JSON record per experiment
//!   (or, under `--sim`, per simulated run) to `<path>`, one object per
//!   line (the machine-readable twin of every table).
//! * `--metrics` — print the engine counters after each table.
//! * `--sim` — instead of the exhaustive experiments, run seeded
//!   adversary-scheduler simulations in all four model families
//!   (`--seed`/`--runs`/`--n`/`--horizon` control the batch; `--adversary`
//!   is one of `random`, `round-robin`, `roamer`, `dropper`).
//! * `--scan` — run only the interned layer-scan scaling experiment: one
//!   Lemma 5.1 instance (default n = 4) through both the sequential and
//!   the parallel expansion path, cross-checked for identity
//!   (`--n`/`--depth`/`--threads` control the instance).
//! * `--scan --quotient` — the symmetry-reduced variant: the same Lemma
//!   5.1 instance over canonical orbits, cross-checked against the full
//!   space when n ≤ 5 and quotient-only beyond (the reduction plus packed
//!   arenas are what make n = 6 reachable).
//! * `--boxed` — (scan mode) force boxed state storage even when the model
//!   provides a packed codec — the cross-check path that demonstrates
//!   packing is a pure representation change.
//! * `--snapshot <dir>` — (scan mode) after the scan, write the explored
//!   arena into `<dir>` as a versioned, SHA-256-sealed snapshot
//!   (`arena-state.bin`, or `arena-quotient.bin` under `--quotient`).
//! * `--resume <dir>` — (scan mode) load the arena snapshot from `<dir>`
//!   instead of re-expanding from scratch, then run the scan over it —
//!   possibly extended to a larger `--depth`. Resumed scans are
//!   bit-identical to cold ones; if the snapshot was taken under a
//!   different `--horizon` (a FloodMin deadline change), only the arena
//!   rows whose raw successor sets actually moved are re-expanded.
//! * `--horizon <k>` — (scan mode) fix the valence horizon / FloodMin
//!   deadline independently of `--depth` (default `depth + 1`); this is
//!   what keeps the *model* unchanged when a resumed scan deepens the
//!   scan depth. (In `--sim` mode: layers per simulated run.)
//! * `--trace <path>` — (scan mode) record the hierarchical span tree and
//!   write it as Chrome trace-event JSON, loadable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev).
//! * `--profile` — (scan mode) print the self-time profile derived from
//!   the same span tree.
//! * `--heartbeat-ms <k>` — progress-event cadence during layer expansion
//!   (default 1000 ms).
//! * `--store <dir>` — persist every certificate the run produces into the
//!   content-addressed store at `<dir>` (created if absent; puts are
//!   deduplicated by hash). In `--scan` mode that is the scan-verdict
//!   certificate; in `--sim` mode the shrunk-schedule certificates of every
//!   violating run; in the default mode one certificate per registry claim
//!   at small n. Serve the directory with `cert-serve --store <dir>`.

use std::io::Write;

use layered_bench::{
    all_experiments, interned_scan_certified, known_adversary, quotient_scan_certified, sim_batch,
    ScanConfig, Scope, SimBatchConfig,
};
use layered_cert::{registry, CertStore, Certificate};
use layered_core::telemetry::profile::{profile, profile_table};
use layered_core::telemetry::{set_heartbeat_period_ns, Observer, TraceObserver, NOOP};

struct Options {
    scope: Scope,
    json_path: Option<String>,
    metrics: bool,
    sim: Option<SimBatchConfig>,
    scan: Option<ScanConfig>,
    trace_path: Option<String>,
    profile: bool,
    store_path: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        scope: Scope::Full,
        json_path: None,
        metrics: false,
        sim: None,
        scan: None,
        trace_path: None,
        profile: false,
        store_path: None,
    };
    let mut sim_cfg = SimBatchConfig::default();
    let mut sim_requested = false;
    let mut scan_cfg = ScanConfig::default();
    let mut scan_requested = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut numeric = |flag: &str| -> Result<u64, String> {
            args.next()
                .ok_or(format!("{flag} requires a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "quick" => opts.scope = Scope::Quick,
            "full" => opts.scope = Scope::Full,
            "--sim" => sim_requested = true,
            "--scan" => scan_requested = true,
            "--quotient" => scan_cfg.quotient = true,
            "--boxed" => scan_cfg.packed = false,
            "--seed" => sim_cfg.seed = numeric("--seed")?,
            "--runs" => sim_cfg.runs = numeric("--runs")? as usize,
            "--n" => {
                let n = numeric("--n")? as usize;
                sim_cfg.n = n;
                scan_cfg.n = n;
            }
            "--depth" => scan_cfg.depth = numeric("--depth")? as usize,
            "--threads" => scan_cfg.threads = numeric("--threads")? as usize,
            "--horizon" => {
                let h = numeric("--horizon")? as usize;
                sim_cfg.horizon = h;
                scan_cfg.horizon = Some(h);
            }
            "--snapshot" => {
                scan_cfg.snapshot_dir = Some(args.next().ok_or("--snapshot requires a directory")?);
            }
            "--resume" => {
                scan_cfg.resume_dir = Some(args.next().ok_or("--resume requires a directory")?);
            }
            "--adversary" => {
                let name = args.next().ok_or("--adversary requires a name")?;
                if !known_adversary(&name) {
                    return Err(format!(
                        "unknown adversary `{name}` (expected random, round-robin, roamer or dropper)"
                    ));
                }
                sim_cfg.adversary = name;
            }
            "--json" => {
                opts.json_path = Some(args.next().ok_or("--json requires a path argument")?);
            }
            "--store" => {
                opts.store_path = Some(args.next().ok_or("--store requires a directory")?);
            }
            "--trace" => {
                opts.trace_path = Some(args.next().ok_or("--trace requires a path argument")?);
            }
            "--profile" => opts.profile = true,
            "--heartbeat-ms" => set_heartbeat_period_ns(numeric("--heartbeat-ms")? * 1_000_000),
            "--metrics" => opts.metrics = true,
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    if sim_requested && scan_requested {
        return Err("--sim and --scan are mutually exclusive".to_string());
    }
    if sim_requested {
        if sim_cfg.n < 3 {
            return Err(
                "--n must be at least 3 (the crash model needs 1 <= t <= n - 2)".to_string(),
            );
        }
        if sim_cfg.runs == 0 || sim_cfg.horizon == 0 {
            return Err("--runs and --horizon must be positive".to_string());
        }
        opts.sim = Some(sim_cfg);
    }
    if (scan_cfg.quotient || !scan_cfg.packed) && !scan_requested {
        return Err("--quotient and --boxed only apply to --scan".to_string());
    }
    if (scan_cfg.snapshot_dir.is_some() || scan_cfg.resume_dir.is_some()) && !scan_requested {
        return Err("--snapshot and --resume only apply to --scan".to_string());
    }
    if scan_requested && scan_cfg.horizon == Some(0) {
        return Err("--horizon must be positive".to_string());
    }
    if (opts.trace_path.is_some() || opts.profile) && !scan_requested {
        return Err("--trace and --profile only apply to --scan".to_string());
    }
    if scan_requested {
        if scan_cfg.n < 2 {
            return Err("--n must be at least 2 for the layer scan".to_string());
        }
        if scan_cfg.threads == 0 {
            return Err("--threads must be positive".to_string());
        }
        opts.scan = Some(scan_cfg);
    }
    Ok(opts)
}

fn write_json_lines(path: &str, lines: &[String]) {
    match std::fs::File::create(path) {
        Ok(file) => {
            let mut out = std::io::BufWriter::new(file);
            for line in lines {
                if let Err(e) = writeln!(out, "{line}") {
                    eprintln!("error: writing {path}: {e}");
                    std::process::exit(2);
                }
            }
            if let Err(e) = out.flush() {
                eprintln!("error: flushing {path}: {e}");
                std::process::exit(2);
            }
            println!("Wrote {} JSON records to {path}.", lines.len());
        }
        Err(e) => {
            eprintln!("error: creating {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Persists `certs` into the content-addressed store at `path`, reporting
/// how many were fresh vs. already present. Store I/O errors are fatal
/// (exit 2), like any other output-path failure.
fn store_certificates(path: &str, certs: &[Certificate]) {
    let mut store = match CertStore::open(std::path::Path::new(path)) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: opening store {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut fresh = 0usize;
    for cert in certs {
        match store.put(cert, &NOOP) {
            Ok((_, true)) => fresh += 1,
            Ok((_, false)) => {}
            Err(e) => {
                eprintln!("error: storing certificate in {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "Stored {} certificate(s) in {path} ({fresh} new, {} already present).",
        certs.len(),
        certs.len() - fresh
    );
}

fn run_simulations(cfg: &SimBatchConfig, opts: &Options) {
    println!("Layered analysis of consensus — adversary-scheduler simulation\n");
    let batch = sim_batch(cfg);
    println!("{}", batch.table);
    println!(
        "  {} runs, {} layers executed, {} faults injected",
        batch.metrics.counter("sim.runs"),
        batch.metrics.counter("sim.steps"),
        batch.faults
    );
    if opts.metrics {
        for (name, total) in &batch.metrics.counters {
            println!("  {name}: {total}");
        }
    }
    println!();
    if let Some(path) = &opts.json_path {
        let lines: Vec<String> = batch.records.iter().map(ToString::to_string).collect();
        write_json_lines(path, &lines);
    }
    if let Some(path) = &opts.store_path {
        store_certificates(path, &batch.certificates);
    }
    println!("Replay any run with its recorded seed: outcomes above are a pure function of (seed, run index).");
    if !batch.verified {
        println!("Shrunk-schedule verification FAILED: a minimized schedule no longer replays to its recorded outcome.");
        std::process::exit(1);
    }
}

fn run_scan(cfg: &ScanConfig, opts: &Options) {
    if cfg.quotient {
        println!("Layered analysis of consensus — symmetry-reduced layer-scan check\n");
    } else {
        println!("Layered analysis of consensus — interned layer-scan scaling check\n");
    }
    let tracing = opts.trace_path.is_some() || opts.profile;
    let tracer = TraceObserver::new();
    let extra: &dyn Observer = if tracing { &tracer } else { &NOOP };
    let (exp, certificate) = if cfg.quotient {
        quotient_scan_certified(cfg, extra)
    } else {
        interned_scan_certified(cfg, extra)
    };
    println!("[{}] {}", exp.id, exp.claim);
    println!("{}", exp.table);
    if opts.metrics {
        println!("  wall time: {:.3} ms", exp.wall_nanos() as f64 / 1e6);
        for (name, total) in &exp.metrics.counters {
            println!("  {name}: {total}");
        }
        for (name, g) in &exp.metrics.gauges {
            println!("  {name}: last {} / max {}", g.last, g.max);
        }
    }
    if let Some(path) = &opts.json_path {
        write_json_lines(path, &[exp.json_record().to_string()]);
    }
    if let Some(path) = &opts.trace_path {
        match std::fs::write(path, tracer.to_chrome_trace().to_string()) {
            Ok(()) => println!(
                "Wrote {} span(s) of Chrome trace-event JSON to {path} (open in chrome://tracing or ui.perfetto.dev).",
                tracer.spans().len()
            ),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if opts.profile {
        println!("{}", profile_table(&profile(&tracer.spans())));
    }
    if tracing && tracer.dropped() > 0 {
        println!(
            "  (trace ring overflowed: {} span record(s) dropped)",
            tracer.dropped()
        );
    }
    if let Some(path) = &opts.store_path {
        match &certificate {
            Some(cert) => store_certificates(path, std::slice::from_ref(cert)),
            None => {
                eprintln!("error: no scan certificate produced (witness construction failed)");
                std::process::exit(1);
            }
        }
    }
    if exp.ok {
        if cfg.quotient {
            println!("Quotient and full verdicts agree; the de-quotiented witness re-verifies.");
        } else {
            println!("Sequential and parallel scans agree; the witness re-verifies.");
        }
    } else {
        println!("Scan cross-check FAILED: the two paths diverged or the witness broke.");
        std::process::exit(1);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: experiments [quick|full] [--json <path>] [--metrics] [--store <dir>]\n       experiments --sim [--seed <u64>] [--runs <k>] [--n <k>] [--horizon <k>] [--adversary <name>] [--json <path>] [--store <dir>]\n       experiments --scan [--quotient] [--boxed] [--n <k>] [--depth <k>] [--threads <k>] [--horizon <k>] [--snapshot <dir>] [--resume <dir>] [--json <path>] [--trace <path>] [--profile] [--heartbeat-ms <k>] [--store <dir>]"
            );
            std::process::exit(2);
        }
    };
    if let Some(sim_cfg) = &opts.sim {
        run_simulations(sim_cfg, &opts);
        return;
    }
    if let Some(scan_cfg) = &opts.scan {
        run_scan(scan_cfg, &opts);
        return;
    }
    println!(
        "Layered analysis of consensus — experiment harness ({:?} scope)",
        opts.scope
    );
    println!("Reproducing Moses & Rajsbaum, PODC 1998, claim by claim.\n");
    let experiments = all_experiments(opts.scope);
    let mut failures = 0;
    for exp in &experiments {
        println!("[{}] {}", exp.id, exp.claim);
        println!("{}", exp.table);
        if opts.metrics {
            println!("  wall time: {:.3} ms", exp.wall_nanos() as f64 / 1e6);
            for (name, total) in &exp.metrics.counters {
                println!("  {name}: {total}");
            }
            for (name, g) in &exp.metrics.gauges {
                println!("  {name}: last {} / max {}", g.last, g.max);
            }
        }
        if exp.ok {
            println!("  => OK\n");
        } else {
            failures += 1;
            println!("  => MISMATCH\n");
        }
    }
    if let Some(path) = &opts.json_path {
        let lines: Vec<String> = experiments
            .iter()
            .map(|e| e.json_record().to_string())
            .collect();
        write_json_lines(path, &lines);
    }
    if let Some(path) = &opts.store_path {
        // One certificate per registry claim, at every computable size:
        // the default mode leaves behind a store that answers the whole
        // query surface cold.
        let mut certs = Vec::new();
        for &model in registry::MODEL_KEYS {
            let max_n = match opts.scope {
                Scope::Quick => 3,
                Scope::Full => registry::max_compute_n(model),
            };
            for claim in registry::claims_for(model) {
                for n in 3..=max_n {
                    match registry::compute(model, n, claim, &NOOP) {
                        Ok(cert) => certs.push(cert),
                        Err(e) => {
                            eprintln!("error: computing {model} n={n} {claim}: {e}");
                            failures += 1;
                        }
                    }
                }
            }
        }
        store_certificates(path, &certs);
    }
    if failures == 0 {
        println!("All experiments match the paper's claims.");
    } else {
        println!("{failures} experiment(s) deviated from the paper's claims.");
        std::process::exit(1);
    }
}
