//! Bench regression gating: compare a fresh experiment run against the
//! best committed `BENCH_*.json` record per experiment.
//!
//! Every PR that touches the engines commits a `BENCH_PR<k>.json` with the
//! canonical JSON records of the scan experiments. This module parses those
//! records and gates a fresh run with a noise tolerance: a wall regression
//! fires only when the fresh time exceeds the *best* (lowest `wall_ns`)
//! baseline per experiment key by both a ratio (default 2×, CI machines
//! are noisy) *and* an absolute floor (default 50 ms, so micro-experiments
//! can't trip the ratio on scheduler jitter). Headline work counters
//! (`states_visited`, `dedup_hits`, `valence_cache_hits`,
//! `max_frontier_width`) are deterministic per instance and gated at a
//! tight 10% — they catch accidental work blow-ups that a generous wall
//! tolerance would hide. Counters are compared against the *latest*
//! committed baseline, not the best one: engines legitimately change how
//! much work an instance takes as PRs land, and each PR commits a fresh
//! record reflecting current semantics, while best-ever wall time remains
//! the performance bar.
//!
//! The `bench` binary's `regress` subcommand drives this; the comparison
//! logic is a library so the negative test (a synthetically slowed record
//! must fail) can exercise it directly.

use std::collections::BTreeMap;

use layered_core::report::Table;
use layered_core::telemetry::json::Json;

/// The headline counters gated per experiment (top-level record fields,
/// deterministic for a fixed instance).
pub const GATED_COUNTERS: [&str; 4] = [
    "states_visited",
    "dedup_hits",
    "valence_cache_hits",
    "max_frontier_width",
];

/// One parsed bench record: the stable comparison key, the timing, and the
/// headline counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Comparison key: the experiment id, qualified by the instance size
    /// when the record carries one (`E-sym@n=5`) and by `+full` when the
    /// run included the full-space baseline alongside the quotient
    /// (`E-sym@n=5+full`), so differently-sized or differently-shaped runs
    /// of one experiment never gate each other.
    pub key: String,
    /// The experiment id (`E-scan`, `E-sym`, …).
    pub id: String,
    /// Wall-clock nanoseconds of the run.
    pub wall_ns: u64,
    /// Whether the experiment's own verdict was `ok`.
    pub ok: bool,
    /// Gated counter values, in [`GATED_COUNTERS`] order.
    pub counters: Vec<(&'static str, u64)>,
}

impl BenchRecord {
    /// Parses one JSON record line as written by `Experiment::json_record`.
    pub fn parse(line: &str) -> Result<BenchRecord, String> {
        let json = Json::parse(line).map_err(|e| format!("bad record: {e}"))?;
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or("record has no string `id`")?
            .to_string();
        let wall_ns = json
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or("record has no numeric `wall_ns`")?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("record has no boolean `ok`")?;
        let counters = GATED_COUNTERS
            .iter()
            .map(|&name| (name, json.get(name).and_then(Json::as_u64).unwrap_or(0)))
            .collect();
        // Instance size, when the experiment records one as a gauge.
        let gauges = json.get("metrics").and_then(|m| m.get("gauges"));
        let n = gauges
            .and_then(|g| g.get("scan.sym.n"))
            .and_then(|g| g.get("last"))
            .and_then(Json::as_u64);
        // Whether the run included the full-space baseline: its wall and
        // counters are a different workload than a quotient-only run of the
        // same size (n = 5 crossed that line when the arenas went packed).
        let full = gauges.is_some_and(|g| g.get("scan.sym.full.states_seen").is_some());
        let key = match (n, full) {
            (Some(n), true) => format!("{id}@n={n}+full"),
            (Some(n), false) => format!("{id}@n={n}"),
            (None, _) => id.clone(),
        };
        Ok(BenchRecord {
            key,
            id,
            wall_ns,
            ok,
            counters,
        })
    }

    /// Parses a whole `BENCH_*.json` file (one record per line).
    pub fn parse_lines(text: &str) -> Result<Vec<BenchRecord>, String> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(BenchRecord::parse)
            .collect()
    }
}

/// Noise tolerances of the gate. Ratios are fixed-point hundredths so the
/// comparison is integer-exact.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Wall regression ratio threshold, in hundredths (200 = 2×).
    pub wall_ratio_x100: u64,
    /// Absolute wall floor in nanoseconds: deltas below this never fire.
    pub wall_floor_ns: u64,
    /// Counter drift threshold, in hundredths (110 = ±10%).
    pub counter_ratio_x100: u64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall_ratio_x100: 200,
            wall_floor_ns: 50_000_000,
            counter_ratio_x100: 110,
        }
    }
}

/// The gate's verdict on one fresh record.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The comparison key.
    pub key: String,
    /// Fresh wall nanoseconds.
    pub fresh_wall_ns: u64,
    /// Best baseline wall nanoseconds, when a baseline exists.
    pub baseline_wall_ns: Option<u64>,
    /// Human-readable failure reasons; empty iff the record passes.
    pub failures: Vec<String>,
}

impl Verdict {
    /// Whether this record passed the gate.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The baselines the gate compares against, per comparison key.
#[derive(Clone, Debug, Default)]
pub struct Baselines {
    /// Lowest `wall_ns` ever committed — the performance bar.
    pub best_wall: BTreeMap<String, BenchRecord>,
    /// Most recently committed record — the current work-counter
    /// expectations.
    pub latest: BTreeMap<String, BenchRecord>,
}

/// Folds committed records (in commit order: oldest file first) into the
/// per-key baselines. Records whose own verdict was not `ok` are skipped —
/// a broken run is no baseline.
#[must_use]
pub fn collect_baselines(records: &[BenchRecord]) -> Baselines {
    let mut baselines = Baselines::default();
    for r in records {
        if !r.ok {
            continue;
        }
        match baselines.best_wall.get(&r.key) {
            Some(b) if b.wall_ns <= r.wall_ns => {}
            _ => {
                baselines.best_wall.insert(r.key.clone(), r.clone());
            }
        }
        baselines.latest.insert(r.key.clone(), r.clone());
    }
    baselines
}

/// Gates each fresh record against the baselines with the same key.
///
/// A fresh record fails when (a) its own experiment verdict is not `ok`,
/// (b) its wall time exceeds the best-ever baseline by both the ratio and
/// the absolute floor, or (c) a gated counter drifts beyond the counter
/// ratio in either direction from the latest baseline. Fresh records
/// without a baseline pass (first run of a new experiment); baselines
/// without a fresh record are ignored.
#[must_use]
pub fn compare(baselines: &Baselines, fresh: &[BenchRecord], tol: Tolerance) -> Vec<Verdict> {
    fresh
        .iter()
        .map(|f| {
            let mut failures = Vec::new();
            if !f.ok {
                failures.push("experiment verdict not ok".to_string());
            }
            let best = baselines.best_wall.get(&f.key);
            if let Some(b) = best {
                let limit = b.wall_ns.saturating_mul(tol.wall_ratio_x100) / 100;
                let delta = f.wall_ns.saturating_sub(b.wall_ns);
                if f.wall_ns > limit && delta > tol.wall_floor_ns {
                    failures.push(format!(
                        "wall {} ns > {}x baseline {} ns (delta {} ns > floor {} ns)",
                        f.wall_ns,
                        tol.wall_ratio_x100 as f64 / 100.0,
                        b.wall_ns,
                        delta,
                        tol.wall_floor_ns
                    ));
                }
            }
            if let Some(b) = baselines.latest.get(&f.key) {
                for (name, fresh_v) in &f.counters {
                    let base_v = b
                        .counters
                        .iter()
                        .find(|(n, _)| n == name)
                        .map_or(0, |&(_, v)| v);
                    let high = base_v.saturating_mul(tol.counter_ratio_x100) / 100;
                    let low = base_v.saturating_mul(100) / tol.counter_ratio_x100;
                    if *fresh_v > high || *fresh_v < low {
                        failures.push(format!(
                            "counter {name} drifted: fresh {fresh_v} vs baseline {base_v} (±{}%)",
                            tol.counter_ratio_x100 - 100
                        ));
                    }
                }
            }
            Verdict {
                key: f.key.clone(),
                fresh_wall_ns: f.wall_ns,
                baseline_wall_ns: best.map(|b| b.wall_ns),
                failures,
            }
        })
        .collect()
}

/// Renders the verdicts as a report table.
#[must_use]
pub fn verdict_table(verdicts: &[Verdict]) -> Table {
    let mut table = Table::new(
        "Bench regression gate — fresh run vs. best committed baseline",
        &["experiment", "fresh ms", "baseline ms", "verdict"],
    );
    for v in verdicts {
        table.row_owned(vec![
            v.key.clone(),
            format!("{:.1}", v.fresh_wall_ns as f64 / 1e6),
            v.baseline_wall_ns
                .map_or("(none)".to_string(), |b| format!("{:.1}", b as f64 / 1e6)),
            if v.passed() {
                "ok".to_string()
            } else {
                v.failures.join("; ")
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(key: &str, wall_ns: u64, states: u64) -> BenchRecord {
        BenchRecord {
            key: key.to_string(),
            id: key.to_string(),
            wall_ns,
            ok: true,
            counters: vec![
                ("states_visited", states),
                ("dedup_hits", 10),
                ("valence_cache_hits", 20),
                ("max_frontier_width", 5),
            ],
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = collect_baselines(&[record("E-x", 1_000_000, 100)]);
        let verdicts = compare(
            &base,
            &[record("E-x", 1_000_000, 100)],
            Tolerance::default(),
        );
        assert!(verdicts.iter().all(Verdict::passed));
    }

    #[test]
    fn best_baseline_is_minimum_wall() {
        let base =
            collect_baselines(&[record("E-x", 3_000_000, 100), record("E-x", 1_000_000, 100)]);
        assert_eq!(base.best_wall["E-x"].wall_ns, 1_000_000);
    }

    #[test]
    fn broken_baselines_are_skipped() {
        let mut bad = record("E-x", 1, 100);
        bad.ok = false;
        let base = collect_baselines(&[bad, record("E-x", 2_000_000, 100)]);
        assert_eq!(base.best_wall["E-x"].wall_ns, 2_000_000);
    }

    #[test]
    fn slowdown_within_ratio_passes() {
        // 1.5x slower: inside the default 2x ratio.
        let base = collect_baselines(&[record("E-x", 100_000_000, 100)]);
        let verdicts = compare(
            &base,
            &[record("E-x", 150_000_000, 100)],
            Tolerance::default(),
        );
        assert!(verdicts[0].passed());
    }

    #[test]
    fn synthetically_slowed_record_fails() {
        // 10x slower and 900 ms over: both gates fire.
        let base = collect_baselines(&[record("E-x", 100_000_000, 100)]);
        let verdicts = compare(
            &base,
            &[record("E-x", 1_000_000_000, 100)],
            Tolerance::default(),
        );
        assert!(!verdicts[0].passed());
        assert!(verdicts[0].failures[0].contains("wall"));
    }

    #[test]
    fn small_absolute_delta_never_fires() {
        // 10x ratio but only 9 ms over: under the 50 ms floor.
        let base = collect_baselines(&[record("E-x", 1_000_000, 100)]);
        let verdicts = compare(
            &base,
            &[record("E-x", 10_000_000, 100)],
            Tolerance::default(),
        );
        assert!(verdicts[0].passed());
    }

    #[test]
    fn counter_drift_fails_both_directions() {
        let base = collect_baselines(&[record("E-x", 1_000_000, 100)]);
        for drifted in [200, 50] {
            let verdicts = compare(
                &base,
                &[record("E-x", 1_000_000, drifted)],
                Tolerance::default(),
            );
            assert!(!verdicts[0].passed(), "drift to {drifted} should fail");
            assert!(verdicts[0].failures[0].contains("states_visited"));
        }
    }

    #[test]
    fn counters_gate_against_latest_baseline_only() {
        // A stale old record with different counters must not fail the gate
        // when a newer record matches the fresh run — but the old record's
        // faster wall time is still the performance bar.
        let base =
            collect_baselines(&[record("E-x", 1_000_000, 999), record("E-x", 5_000_000, 100)]);
        let verdicts = compare(
            &base,
            &[record("E-x", 5_000_000, 100)],
            Tolerance::default(),
        );
        assert!(verdicts[0].passed(), "{:?}", verdicts[0].failures);
        assert_eq!(verdicts[0].baseline_wall_ns, Some(1_000_000));
    }

    #[test]
    fn missing_baseline_passes() {
        let base = collect_baselines(&[]);
        let verdicts = compare(
            &base,
            &[record("E-new", 1_000_000, 1)],
            Tolerance::default(),
        );
        assert!(verdicts[0].passed());
        assert_eq!(verdicts[0].baseline_wall_ns, None);
    }

    #[test]
    fn parse_round_trips_a_real_record_shape() {
        let line = r#"{"claim":"c","dedup_hits":48,"id":"E-scan","max_frontier_width":40,"metrics":{"counters":{},"gauges":{}},"ok":true,"states_visited":192,"valence_cache_hits":240,"wall_ns":11513687}"#;
        let r = BenchRecord::parse(line).expect("parses");
        assert_eq!(r.key, "E-scan");
        assert_eq!(r.wall_ns, 11_513_687);
        assert_eq!(r.counters[0], ("states_visited", 192));
    }

    #[test]
    fn sized_records_get_qualified_keys() {
        let line = r#"{"id":"E-sym","ok":true,"wall_ns":5,"metrics":{"gauges":{"scan.sym.n":{"last":5,"max":5}}}}"#;
        let r = BenchRecord::parse(line).expect("parses");
        assert_eq!(r.key, "E-sym@n=5");
    }

    #[test]
    fn full_baseline_runs_get_their_own_keys() {
        // A record carrying the full-space baseline gauges is a different
        // workload than a quotient-only run of the same size: it must not
        // gate against (or be gated by) the quotient-only baselines.
        let line = r#"{"id":"E-sym","ok":true,"wall_ns":5,"metrics":{"gauges":{"scan.sym.full.states_seen":{"last":112,"max":112},"scan.sym.n":{"last":5,"max":5}}}}"#;
        let r = BenchRecord::parse(line).expect("parses");
        assert_eq!(r.key, "E-sym@n=5+full");
    }
}
