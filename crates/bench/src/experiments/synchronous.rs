//! Experiments for Section 6: the t+1-round lower bound and its
//! surrounding lemmas in the t-resilient synchronous model.

use layered_core::report::{yes_no, Table};
use layered_core::telemetry::Observer;
use layered_core::{check_consensus_with, Valence, ValenceSolver};
use layered_protocols::FloodMin;
use layered_sync_crash::{
    check_display_below_budget, check_lemma_6_4, lemma_6_1_chain, lemma_6_2_witness, CrashModel,
};

use crate::{Experiment, Scope};

/// Corollary 6.3: every `t`-round candidate fails; FloodMin at `t + 1`
/// passes exhaustively — the Dolev–Strong bound, and its tightness.
pub fn lower_bound(scope: Scope) -> Experiment {
    crate::measured(
        "E-6.3",
        "Corollary 6.3 (t+1 rounds necessary; FloodMin(t+1) sufficient)",
        |obs| {
            let mut table = Table::new(
                "Corollary 6.3 — the t+1-round lower bound (and tightness)",
                &["n", "t", "protocol", "states", "verdict", "as expected"],
            );
            let mut ok = true;
            let cases: &[(usize, usize)] = match scope {
                Scope::Quick => &[(3, 1)],
                Scope::Full => &[(3, 1), (4, 1), (4, 2)],
            };
            for &(n, t) in cases {
                // The too-fast candidate: t rounds.
                let m = CrashModel::new(n, t, FloodMin::new(t as u16));
                let report = check_consensus_with(&m, t, 1, obs);
                let expected = !report.passed();
                ok &= expected;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    format!("FloodMin({t})"),
                    report.states_explored.to_string(),
                    report
                        .violations
                        .first()
                        .map_or("passed", |v| v.kind())
                        .to_string(),
                    yes_no(expected).to_string(),
                ]);
                // The tight protocols: t + 1 rounds, exhaustively verified —
                // three independently structured witnesses that the bound is
                // tight.
                let m = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
                let report = check_consensus_with(&m, t + 1, 1, obs);
                let expected = report.passed();
                ok &= expected;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    format!("FloodMin({})", t + 1),
                    report.states_explored.to_string(),
                    if report.passed() {
                        "passed".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(expected).to_string(),
                ]);

                let m = CrashModel::new(n, t, layered_protocols::Eig::new((t + 1) as u16));
                let report = check_consensus_with(&m, t + 1, 1, obs);
                let expected = report.passed();
                ok &= expected;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    format!("EIG({})", t + 1),
                    report.states_explored.to_string(),
                    if report.passed() {
                        "passed".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(expected).to_string(),
                ]);

                let m =
                    CrashModel::new(n, t, layered_protocols::EarlyFloodMin::new((t + 1) as u16));
                let report = check_consensus_with(&m, t + 1, 1, obs);
                let expected = report.passed();
                ok &= expected;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    format!("EarlyFloodMin({})", t + 1),
                    report.states_explored.to_string(),
                    if report.passed() {
                        "passed".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(expected).to_string(),
                ]);
            }
            (table, ok)
        },
    )
}

/// Lemmas 6.1 and 6.2: bivalence survives `t − f − 1` layers, and one more
/// round still leaves an undecided non-failed process.
pub fn lemmas_6_1_6_2(scope: Scope) -> Experiment {
    crate::measured(
        "E-6.1",
        "Lemmas 6.1/6.2 (bivalence forces t+1 rounds)",
        |obs| {
            let mut table = Table::new(
                "Lemmas 6.1/6.2 — bivalent chains and undecided successors",
                &[
                    "n",
                    "t",
                    "chain len (t−1)",
                    "built",
                    "6.2 witness",
                    "undecided",
                ],
            );
            let mut ok = true;
            let cases: &[(usize, usize)] = match scope {
                Scope::Quick => &[(3, 1)],
                Scope::Full => &[(3, 1), (4, 2)],
            };
            for &(n, t) in cases {
                let m = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
                let mut solver = ValenceSolver::with_observer(&m, t + 1, obs);
                let x0 = solver.bivalent_initial_state();
                let Some(x0) = x0 else {
                    ok = false;
                    table.row_owned(vec![
                        n.to_string(),
                        t.to_string(),
                        "-".into(),
                        "NO BIVALENT INIT".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                };
                let out = lemma_6_1_chain(&m, &mut solver, x0);
                let built = out.reached_target();
                ok &= built;
                let last = out.chain.as_ref().map(|c| c.last().clone());
                let (witness, undecided) = match last {
                    Some(ref x) if solver.valence(x) == Valence::Bivalent => {
                        match lemma_6_2_witness(&m, x) {
                            Some((y, u)) => {
                                let _ = y;
                                (true, u.len())
                            }
                            None => (false, 0),
                        }
                    }
                    _ => (false, 0),
                };
                ok &= witness;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    (t - 1).to_string(),
                    yes_no(built).to_string(),
                    yes_no(witness).to_string(),
                    undecided.to_string(),
                ]);
            }
            (table, ok)
        },
    )
}

/// Ablation: early-stopping vs. plain FloodMin — rounds until every
/// non-failed process has decided, grouped by the run's failure count.
///
/// This quantifies the discussion after Lemma 6.4 (the Dwork–Moses-style
/// `f + 2` upper bounds): wasting failures costs the adversary rounds. The
/// experiment enumerates *every* `S^t`-run to the deadline and records when
/// each protocol finished.
pub fn early_stopping(scope: Scope) -> Experiment {
    crate::measured(
        "E-early",
        "Early stopping decides by round min(f+2, t+1) (post-6.4 discussion)",
        |obs| {
            let mut table = Table::new(
                "Early stopping — decision round vs. failures (all S^t-runs)",
                &[
                    "n",
                    "t",
                    "protocol",
                    "f",
                    "runs",
                    "min round",
                    "max round",
                    "≤ min(f+2, t+1)",
                ],
            );
            let mut ok = true;
            let cases: &[(usize, usize)] = match scope {
                Scope::Quick => &[(3, 1)],
                Scope::Full => &[(3, 1), (4, 2)],
            };

            // Enumerate all paths, recording (failures at the end, first depth at
            // which every non-failed process had decided).
            fn sweep<M: layered_core::LayeredModel>(
                model: &M,
                horizon: usize,
                obs: &dyn Observer,
            ) -> std::collections::BTreeMap<usize, (usize, usize, usize)> {
                // f -> (runs, min_round, max_round)
                let mut acc = std::collections::BTreeMap::new();
                fn all_decided<M: layered_core::LayeredModel>(m: &M, x: &M::State) -> bool {
                    m.non_failed(x)
                        .into_iter()
                        .all(|i| m.decision(x, i).is_some())
                }
                fn rec<M: layered_core::LayeredModel>(
                    m: &M,
                    x: &M::State,
                    depth: usize,
                    horizon: usize,
                    first_done: Option<usize>,
                    acc: &mut std::collections::BTreeMap<usize, (usize, usize, usize)>,
                    obs: &dyn Observer,
                ) {
                    obs.counter("engine.states_visited", 1);
                    let first_done = first_done.or_else(|| all_decided(m, x).then_some(depth));
                    if depth == horizon {
                        let f = m.non_failed(x).len();
                        let f = m.num_processes() - f;
                        let round = first_done.unwrap_or(horizon + 1);
                        let e = acc.entry(f).or_insert((0, usize::MAX, 0));
                        e.0 += 1;
                        e.1 = e.1.min(round);
                        e.2 = e.2.max(round);
                        return;
                    }
                    for y in m.successors(x) {
                        rec(m, &y, depth + 1, horizon, first_done, acc, obs);
                    }
                }
                for x0 in model.initial_states() {
                    rec(model, &x0, 0, horizon, None, &mut acc, obs);
                }
                acc
            }

            for &(n, t) in cases {
                for early in [false, true] {
                    let name = if early { "EarlyFloodMin" } else { "FloodMin" };
                    let rows: std::collections::BTreeMap<usize, (usize, usize, usize)> = if early {
                        let m = CrashModel::new(
                            n,
                            t,
                            layered_protocols::EarlyFloodMin::new((t + 1) as u16),
                        );
                        sweep(&m, t + 1, obs)
                    } else {
                        let m = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
                        sweep(&m, t + 1, obs)
                    };
                    for (f, (runs, min_r, max_r)) in rows {
                        let bound = (f + 2).min(t + 1);
                        // Plain FloodMin always takes t + 1; the early rule must
                        // respect the f-adaptive bound.
                        let within = if early {
                            max_r <= bound
                        } else {
                            max_r == t + 1
                        };
                        ok &= within;
                        table.row_owned(vec![
                            n.to_string(),
                            t.to_string(),
                            name.to_string(),
                            f.to_string(),
                            runs.to_string(),
                            min_r.to_string(),
                            max_r.to_string(),
                            yes_no(within).to_string(),
                        ]);
                    }
                }
            }
            (table, ok)
        },
    )
}

/// Lemma 6.4 plus the display property below the failure budget.
pub fn lemma_6_4(scope: Scope) -> Experiment {
    crate::measured(
        "E-6.4",
        "Lemma 6.4 (fast protocols decide once failures stop)",
        |obs| {
            let mut table = Table::new(
                "Lemma 6.4 — fast protocols are univalent after a failure-free round",
                &["n", "t", "check", "holds"],
            );
            let mut ok = true;
            let cases: &[(usize, usize)] = match scope {
                Scope::Quick => &[(3, 1)],
                Scope::Full => &[(3, 1), (4, 2)],
            };
            for &(n, t) in cases {
                let m = CrashModel::new(n, t, FloodMin::new((t + 1) as u16));
                let mut solver = ValenceSolver::with_observer(&m, t + 2, obs);
                let holds = check_lemma_6_4(&m, &mut solver, t + 1).is_none();
                ok &= holds;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    "6.4: univalent after clean round".into(),
                    yes_no(holds).to_string(),
                ]);
                let holds = check_display_below_budget(&m, 1).is_none();
                ok &= holds;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    "crash display below budget".into(),
                    yes_no(holds).to_string(),
                ]);
            }
            (table, ok)
        },
    )
}
