//! E-cert: the certificate store round trip. One certificate of every
//! kind the registry can compute is persisted to a fresh content-addressed
//! store, the store is reopened from disk, and the reloaded artifact must
//! be byte-identical to the original and still pass its own verifier.
//!
//! This is the storage twin of the query-server acceptance test: it proves
//! the `--store` directory written by the other experiment modes can be
//! trusted cold — across process restarts, with nothing but the bytes on
//! disk and the index to go on.

use std::path::PathBuf;

use layered_cert::{registry, CertStore, Certificate};
use layered_core::report::{yes_no, Table};
use layered_core::telemetry::Observer;

use crate::{Experiment, Scope};

/// Store directory under the system temp dir; pid-scoped so concurrently
/// running test binaries cannot collide. Wiped before and after the run so
/// repeated invocations in one process see identical fresh-put behaviour.
fn store_dir() -> PathBuf {
    std::env::temp_dir().join(format!("layered-bench-certstore-{}", std::process::id()))
}

/// One round trip: compute, persist, then (against the reopened store)
/// reload by hash, compare the encodings byte for byte, and re-verify.
fn round_trip_row(
    stored: Option<&(Certificate, String, String)>,
    reopened: Option<&CertStore>,
    obs: &dyn Observer,
) -> (bool, bool, bool) {
    let Some((cert, encoded, hash)) = stored else {
        return (false, false, false);
    };
    let reloaded = reopened.and_then(|store| store.get(hash, obs).ok().flatten());
    let identical = reloaded
        .as_ref()
        .is_some_and(|back| back == cert && back.encode() == *encoded);
    let verified = reloaded
        .as_ref()
        .is_some_and(|back| registry::verify(back, obs).is_ok());
    (true, identical, verified)
}

/// E-cert: every certificate kind survives `put → reopen → get → verify`
/// with byte-identical encoding (see the module docs).
pub fn cert_store(scope: Scope) -> Experiment {
    crate::measured(
        "E-cert",
        "Certificate store round trip (put → reopen → get, byte-identical, re-verified)",
        |obs| {
            let mut table = Table::new(
                "Certificate store — persist, reload and re-verify every kind",
                &[
                    "model", "n", "claim", "kind", "stored", "reloaded", "verified",
                ],
            );
            // One case per registry claim; Full adds the larger instances
            // the store serves in CI (covering witness, run and scan-verdict
            // kinds — schedule certificates are exercised by `--sim`).
            let cases: &[(&str, usize, &str)] = match scope {
                Scope::Quick => &[
                    ("sync-mobile", 3, "lemma_5_1"),
                    ("sync-crash", 3, "lemma_6_1"),
                    ("async-sm", 2, "theorem_4_2"),
                    ("async-mp", 2, "theorem_4_2"),
                ],
                Scope::Full => &[
                    ("sync-mobile", 3, "lemma_5_1"),
                    ("sync-mobile", 3, "theorem_4_2"),
                    ("sync-crash", 4, "lemma_6_1"),
                    ("async-sm", 3, "theorem_4_2"),
                    ("async-mp", 3, "theorem_4_2"),
                ],
            };
            let dir = store_dir();
            let _ = std::fs::remove_dir_all(&dir);

            // Phase 1: compute each certificate and persist it.
            let mut stored: Vec<Option<(Certificate, String, String)>> = Vec::new();
            match CertStore::open(&dir) {
                Ok(mut store) => {
                    for &(model, n, claim) in cases {
                        let entry = registry::compute(model, n, claim, obs)
                            .ok()
                            .and_then(|cert| {
                                let encoded = cert.encode();
                                store
                                    .put(&cert, obs)
                                    .ok()
                                    .filter(|(_, fresh)| *fresh)
                                    .map(|(hash, _)| (cert, encoded, hash))
                            });
                        stored.push(entry);
                    }
                }
                Err(_) => stored.resize_with(cases.len(), || None),
            }

            // Phase 2: a cold reopen — only the bytes on disk survive.
            let reopened = CertStore::open(&dir).ok();
            let mut ok = true;
            for (&(model, n, claim), entry) in cases.iter().zip(&stored) {
                let (put, identical, verified) =
                    round_trip_row(entry.as_ref(), reopened.as_ref(), obs);
                ok &= put && identical && verified;
                table.row_owned(vec![
                    model.to_string(),
                    n.to_string(),
                    claim.to_string(),
                    entry
                        .as_ref()
                        .map_or("-".to_string(), |(c, _, _)| c.kind.key().to_string()),
                    yes_no(put).to_string(),
                    if identical {
                        "byte-identical"
                    } else {
                        "MISMATCH"
                    }
                    .to_string(),
                    yes_no(verified).to_string(),
                ]);
            }
            let _ = std::fs::remove_dir_all(&dir);
            (table, ok)
        },
    )
}
