//! Experiments for Section 7: k-thick-connectivity, task solvability
//! (Theorem 7.2 / Corollary 7.3), generalized valence (Lemma 7.1), and the
//! s-diameter recurrence (Lemma 7.6 / Theorem 7.7).

use layered_async_mp::MpModel;
use layered_core::report::{yes_no, Table};
use layered_core::{LayeredModel, Value};
use layered_protocols::{MpCollectMin, MpFloodMin, MpIdentity};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;
use layered_topology::{
    check_task, covering_bivalent_run, diameter_sweep, tasks, Covering, CoveringSolver,
};

use crate::{Experiment, Scope};

/// Theorem 7.2 / Corollary 7.3: 1-thick-connectivity of each task's output
/// span versus the verdict of an actual protocol in the 1-resilient
/// message-passing model. Solvable ⟺ 1-thick-connected, on the task suite.
pub fn task_solvability(scope: Scope) -> Experiment {
    crate::measured(
        "E-7.3",
        "Corollary 7.3 (1-thick-connectivity characterizes solvability)",
        |obs| {
            let mut table = Table::new(
                "Thm 7.2 / Cor 7.3 — 1-thick-connectivity vs. 1-resilient solvability (MP)",
                &[
                    "task",
                    "n",
                    "1-thick-conn",
                    "protocol",
                    "verdict",
                    "consistent",
                ],
            );
            let mut ok = true;
            let n = 3usize;
            let _ = scope;

            // consensus: not 1-thick-connected; flooding fails.
            {
                let task = tasks::consensus(n);
                let conn = task.is_k_thick_connected(1);
                let m = MpModel::new(n, MpFloodMin::new(2));
                let report = check_task(&m, &task, 2, 1);
                obs.counter("engine.states_visited", report.states_explored as u64);
                let consistent = !conn && !report.passed();
                ok &= consistent;
                table.row_owned(vec![
                    task.name().into(),
                    n.to_string(),
                    yes_no(conn).into(),
                    "MpFloodMin(2)".into(),
                    if report.passed() {
                        "solves".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(consistent).into(),
                ]);
            }

            // 2-set agreement (ternary inputs): 1-thick-connected; collect(n-1)
            // solves it — after two local phases a process has heard from at least
            // n - 1 processes.
            {
                let task = tasks::k_set_agreement(n, 2);
                let conn = task.is_k_thick_connected(1);
                let m = MpModel::new(n, MpCollectMin::new(n - 1)).with_obligation(2);
                let report = check_task(&m, &task, 2, 1);
                obs.counter("engine.states_visited", report.states_explored as u64);
                let consistent = conn && report.passed();
                ok &= consistent;
                table.row_owned(vec![
                    task.name().into(),
                    n.to_string(),
                    yes_no(conn).into(),
                    "MpCollectMin(n−1)".into(),
                    if report.passed() {
                        "solves".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(consistent).into(),
                ]);
            }

            // identity: 1-thick-connected; decide-own-input solves it wait-free.
            {
                let task = tasks::identity(n);
                let conn = task.is_k_thick_connected(1);
                let m = MpModel::new(n, MpIdentity).with_obligation(1);
                let report = check_task(&m, &task, 1, 1);
                obs.counter("engine.states_visited", report.states_explored as u64);
                let consistent = conn && report.passed();
                ok &= consistent;
                table.row_owned(vec![
                    task.name().into(),
                    n.to_string(),
                    yes_no(conn).into(),
                    "MpIdentity".into(),
                    if report.passed() {
                        "solves".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(consistent).into(),
                ]);
            }

            // pseudo-consensus: connected via the identity facets; identity solves.
            {
                let task = tasks::pseudo_consensus(n);
                let conn = task.is_k_thick_connected(1);
                let m = MpModel::new(n, MpIdentity).with_obligation(1);
                let report = check_task(&m, &task, 1, 1);
                obs.counter("engine.states_visited", report.states_explored as u64);
                let consistent = conn && report.passed();
                ok &= consistent;
                table.row_owned(vec![
                    task.name().into(),
                    n.to_string(),
                    yes_no(conn).into(),
                    "MpIdentity".into(),
                    if report.passed() {
                        "solves".into()
                    } else {
                        report.violations[0].kind().to_string()
                    },
                    yes_no(consistent).into(),
                ]);
            }

            // 1-set agreement = consensus: same disconnection verdict.
            {
                let task = tasks::k_set_agreement(n, 1);
                let conn = task.is_k_thick_connected(1);
                ok &= !conn;
                table.row_owned(vec![
                    task.name().into(),
                    n.to_string(),
                    yes_no(conn).into(),
                    "-".into(),
                    "unsolvable (≡ consensus)".into(),
                    yes_no(!conn).into(),
                ]);
            }

            (table, ok)
        },
    )
}

/// Lemma 7.1: the generalized (covering-based) bivalent-run construction
/// agrees with the binary engine on the consensus covering.
pub fn lemma_7_1(scope: Scope) -> Experiment {
    crate::measured(
        "E-7.1",
        "Lemma 7.1 (bivalent runs w.r.t. arbitrary coverings)",
        |obs| {
            let mut table = Table::new(
                "Lemma 7.1 — covering-bivalent runs (generalized valence)",
                &["model", "covering", "run len", "reached"],
            );
            let mut ok = true;
            let steps = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };
            let horizon = steps + 1;

            let m = MpModel::new(3, MpFloodMin::new(horizon as u16));
            let cov = Covering::consensus(3);
            let mut solver = CoveringSolver::new(&m, &cov, horizon);
            let roots = m.initial_states();
            let out = covering_bivalent_run(&mut solver, &roots, steps);
            ok &= out.reached_target();
            obs.counter(
                "layering.extensions",
                out.chain.as_ref().map_or(0, |c| c.steps()) as u64,
            );
            table.row_owned(vec![
                "MP (S^per)".into(),
                "O_v = all-v outputs".into(),
                out.chain.as_ref().map_or(0, |c| c.steps()).to_string(),
                yes_no(out.reached_target()).into(),
            ]);

            let m = MobileModel::new(3, layered_protocols::FloodMin::new(horizon as u16));
            let mut solver = CoveringSolver::new(&m, &cov, horizon);
            let roots = m.initial_states();
            let out = covering_bivalent_run(&mut solver, &roots, steps);
            ok &= out.reached_target();
            obs.counter(
                "layering.extensions",
                out.chain.as_ref().map_or(0, |c| c.steps()) as u64,
            );
            table.row_owned(vec![
                "M^mf (S₁)".into(),
                "O_v = all-v outputs".into(),
                out.chain.as_ref().map_or(0, |c| c.steps()).to_string(),
                yes_no(out.reached_target()).into(),
            ]);

            (table, ok)
        },
    )
}

/// Lemma 7.6 / Theorem 7.7: measured s-diameters of the depth-m state sets
/// versus the recurrence bound `d_X·d_Y + d_X + d_Y`.
pub fn diameter(scope: Scope) -> Experiment {
    crate::measured(
        "E-7.6",
        "Lemma 7.6 (s-diameter recurrence bounds hold)",
        |obs| {
            let mut table = Table::new(
                "Lemma 7.6 — s-diameter growth vs. the recurrence bound",
                &[
                    "model",
                    "depth",
                    "states",
                    "measured d",
                    "layer d_Y",
                    "bound",
                    "within",
                ],
            );
            let mut ok = true;
            let depth = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };

            let m = CrashModel::new(3, 1, layered_protocols::FloodMin::new((depth + 1) as u16));
            for row in diameter_sweep(&m, depth) {
                ok &= row.within_bound();
                obs.counter("engine.states_visited", row.states as u64);
                table.row_owned(vec![
                    "sync t=1 (S^t)".into(),
                    row.depth.to_string(),
                    row.states.to_string(),
                    row.measured.map_or("disc".into(), |d| d.to_string()),
                    row.layer_diameter.map_or("-".into(), |d| d.to_string()),
                    row.bound.map_or("-".into(), |d| d.to_string()),
                    yes_no(row.within_bound()).into(),
                ]);
            }

            let m = MobileModel::new(3, layered_protocols::FloodMin::new((depth + 1) as u16));
            for row in diameter_sweep(&m, depth) {
                ok &= row.within_bound();
                obs.counter("engine.states_visited", row.states as u64);
                table.row_owned(vec![
                    "M^mf (S₁)".into(),
                    row.depth.to_string(),
                    row.states.to_string(),
                    row.measured.map_or("disc".into(), |d| d.to_string()),
                    row.layer_diameter.map_or("-".into(), |d| d.to_string()),
                    row.bound.map_or("-".into(), |d| d.to_string()),
                    yes_no(row.within_bound()).into(),
                ]);
            }

            (table, ok)
        },
    )
}

/// Extra: the covering validity check — the consensus covering really is a
/// covering of the runs of a correct synchronous protocol, and the decided
/// outputs it classifies match the binary decisions.
pub fn covering_sanity(_scope: Scope) -> Experiment {
    crate::measured(
        "E-7.cov",
        "Coverings classify real protocol outputs",
        |obs| {
            let mut table = Table::new(
                "Covering sanity — decided outputs of FloodMin(t+1) are covered",
                &["n", "t", "terminal simplexes", "covered"],
            );
            let mut ok = true;
            let m = CrashModel::new(3, 1, layered_protocols::FloodMin::new(2));
            let cov = Covering::consensus(3);
            let mut outputs = Vec::new();
            let mut frontier = m.initial_states();
            for _ in 0..2 {
                obs.gauge("engine.frontier_width", frontier.len() as u64);
                let mut next = Vec::new();
                for x in &frontier {
                    obs.counter("engine.states_visited", 1);
                    next.extend(m.successors(x));
                }
                let mut seen = std::collections::HashSet::new();
                frontier = next
                    .into_iter()
                    .filter(|s| {
                        let fresh = seen.insert(s.clone());
                        if !fresh {
                            obs.counter("engine.dedup_hits", 1);
                        }
                        fresh
                    })
                    .collect();
            }
            for x in &frontier {
                outputs.push(layered_topology::decided_simplex(&m, x));
            }
            let covered = cov.is_covering_of(&outputs);
            ok &= covered;
            table.row_owned(vec![
                "3".into(),
                "1".into(),
                outputs.len().to_string(),
                yes_no(covered).into(),
            ]);
            let _ = Value::ZERO;
            (table, ok)
        },
    )
}

/// Lemma 7.4: in the t-resilient synchronous model, for any covering, there
/// is a run whose prefix `x⁰, …, x^t` is bivalent throughout with at most
/// `m` failures at `x^m` — so no algorithm can decide within `t` rounds for
/// tasks whose coverings separate the outputs.
pub fn lemma_7_4(scope: Scope) -> Experiment {
    crate::measured(
        "E-7.4",
        "Lemma 7.4 (covering-bivalent prefixes survive t−1 rounds)",
        |obs| {
            let mut table = Table::new(
                "Lemma 7.4 — covering-bivalent prefixes in the synchronous model",
                &["n", "t", "chain len", "reached", "failures ≤ m at x^m"],
            );
            let mut ok = true;
            let cases: &[(usize, usize)] = match scope {
                Scope::Quick => &[(3, 1)],
                Scope::Full => &[(3, 1), (4, 2)],
            };
            for &(n, t) in cases {
                let m = CrashModel::new(n, t, layered_protocols::FloodMin::new((t + 1) as u16));
                let cov = Covering::consensus(n);
                let mut solver = CoveringSolver::new(&m, &cov, t + 1);
                let roots = m.initial_states();
                // The lemma promises bivalence through round t - 1 at least; with
                // the (t+1)-deadline protocol the chain of length t - 1 must exist
                // (round t states become univalent once the budget pins the run).
                let steps = t.saturating_sub(1);
                let out = covering_bivalent_run(&mut solver, &roots, steps);
                let reached = out.reached_target();
                ok &= reached;
                obs.counter(
                    "layering.extensions",
                    out.chain.as_ref().map_or(0, |c| c.steps()) as u64,
                );
                let failures_ok = out.chain.as_ref().is_some_and(|c| {
                    c.states()
                        .iter()
                        .enumerate()
                        .all(|(m_idx, x)| x.failure_count() <= m_idx)
                }); // failures(x^m) <= m
                ok &= failures_ok;
                table.row_owned(vec![
                    n.to_string(),
                    t.to_string(),
                    out.chain.as_ref().map_or(0, |c| c.steps()).to_string(),
                    yes_no(reached).into(),
                    yes_no(failures_ok).into(),
                ]);
            }
            (table, ok)
        },
    )
}

/// Bivalence profile: the fraction of bivalent states per depth in each
/// model — a figure-like view of how long the adversary can keep the
/// outcome open, and of how little asynchrony the synchronic submodel needs
/// (the Section 5.1 discussion).
pub fn bivalence_profile(scope: Scope) -> Experiment {
    use layered_core::{explore_with, ValenceSolver};
    crate::measured(
        "E-profile",
        "Bivalence persists below the horizon in every model (Thm 4.2 view)",
        |obs| {
            let mut table = Table::new(
                "Bivalence profile — bivalent states per depth",
                &[
                    "model",
                    "depth",
                    "states",
                    "bivalent",
                    "univalent",
                    "novalence",
                ],
            );
            let mut ok = true;
            let depth = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };
            let horizon = depth + 1;

            // The depth through which the adversary is GUARANTEED to keep some
            // state bivalent: below the horizon in the asynchronous models
            // (Theorem 4.2), but only through round t − 1 in the synchronous model
            // (Lemma 6.1 — bivalence dies once the failure budget can no longer
            // protect it, which is the whole point of the t + 1 lower bound).
            macro_rules! profile {
                ($model:expr, $name:expr, $guarantee:expr) => {{
                    let m = $model;
                    let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
                    let exp = explore_with(&m, &m.initial_states(), depth, obs);
                    for (d, level) in exp.levels.iter().enumerate() {
                        let mut biv = 0usize;
                        let mut uni = 0usize;
                        let mut none = 0usize;
                        for x in level {
                            match solver.valence(x) {
                                layered_core::Valence::Bivalent => biv += 1,
                                layered_core::Valence::Univalent(_) => uni += 1,
                                layered_core::Valence::NoValence => none += 1,
                            }
                        }
                        #[allow(clippy::int_plus_one)]
                        if d <= $guarantee {
                            ok &= biv > 0;
                        }
                        table.row_owned(vec![
                            $name.to_string(),
                            d.to_string(),
                            level.len().to_string(),
                            biv.to_string(),
                            uni.to_string(),
                            none.to_string(),
                        ]);
                    }
                }};
            }

            profile!(
                MobileModel::new(3, layered_protocols::FloodMin::new(horizon as u16)),
                "M^mf (S₁)",
                horizon - 1
            );
            profile!(
                layered_async_sm::SmModel::new(
                    3,
                    layered_protocols::SmFloodMin::new(horizon as u16)
                ),
                "M^rw (S^rw)",
                horizon - 1
            );
            profile!(
                MpModel::new(3, MpFloodMin::new(horizon as u16)),
                "MP (S^per)",
                horizon - 1
            );
            let t = 1usize;
            profile!(
                CrashModel::new(3, t, layered_protocols::FloodMin::new(horizon as u16)),
                "sync t=1 (S^t)",
                t - 1
            );

            (table, ok)
        },
    )
}
