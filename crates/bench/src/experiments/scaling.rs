//! Scaling experiment for the interned state spaces: a Lemma 5.1 instance
//! (layer valence connectivity in the mobile-failure model) at n = 4,
//! run through both the sequential and the parallel expansion path.
//!
//! This is the acceptance experiment for the dense-id refactor: the two
//! paths must produce identical [`LayerScan`] reports, and the witness the
//! interned Theorem 4.2 engine extracts must still re-verify from scratch.
//! n = 4 was out of enumeration reach for the state-keyed engines; the
//! `--scan` mode of the `experiments` binary runs this instance in CI.

use std::cell::RefCell;
use std::path::Path;

use layered_cert::{CertKind, CertMeta, Certificate};
use layered_core::report::Table;
use layered_core::telemetry::json::Json;
use layered_core::telemetry::{clock, Observer, NOOP};
use layered_core::{
    load_quotient, load_space, save_quotient, save_space, scan_layer_valence_connectivity,
    scan_layer_valence_connectivity_parallel, scan_layer_valence_connectivity_quotient,
    scan_layer_valence_connectivity_quotient_parallel, witness_to_json, ArenaMeta,
    ImpossibilityWitness, LayeredModel, MemoryFootprint, QuotientSolver, QuotientSpace, StateSpace,
    ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::{MobileLayering, MobileModel, MODEL_KEY};

use crate::Experiment;

/// File name of an interned-arena snapshot inside a `--snapshot`/`--resume`
/// directory.
pub const STATE_SNAPSHOT_FILE: &str = "arena-state.bin";

/// File name of a quotient-arena snapshot inside a `--snapshot`/`--resume`
/// directory.
pub const QUOTIENT_SNAPSHOT_FILE: &str = "arena-quotient.bin";

/// Protocol key recorded in scan snapshot headers.
const PROTOCOL_KEY: &str = "floodmin";

/// Reads a snapshot blob from `dir/file`.
fn read_snapshot(dir: &str, file: &str) -> Result<Vec<u8>, String> {
    let path = Path::new(dir).join(file);
    std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Writes a snapshot blob to `dir/file`, creating `dir` as needed.
fn write_snapshot(dir: &str, file: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let path = Path::new(dir).join(file);
    std::fs::write(&path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Checks that a loaded snapshot was built for the scan being resumed.
///
/// Model, protocol, `n` and layering must all match — a snapshot of a
/// different instance shares no states with this one and resuming over it
/// would be meaningless. The *horizon* is deliberately not checked here: a
/// horizon change is a protocol change (the FloodMin deadline moves), and
/// the caller answers it with a differential refresh instead of a
/// rejection.
fn check_resume_compat(meta: &ArenaMeta, n: usize, layering: &str) -> Result<(), String> {
    if meta.model != MODEL_KEY {
        return Err(format!(
            "snapshot is for model `{}`, not `{MODEL_KEY}`",
            meta.model
        ));
    }
    if meta.protocol != PROTOCOL_KEY {
        return Err(format!(
            "snapshot is for protocol `{}`, not `{PROTOCOL_KEY}`",
            meta.protocol
        ));
    }
    if meta.n != n as u64 {
        return Err(format!("snapshot has n={}, scan has n={n}", meta.n));
    }
    if meta.layering != layering {
        return Err(format!(
            "snapshot is for layering `{}`, not `{layering}`",
            meta.layering
        ));
    }
    Ok(())
}

/// The [`ArenaMeta`] a scan stamps into the snapshots it writes.
fn scan_meta(cfg: &ScanConfig, horizon: usize, layering: &str) -> ArenaMeta {
    ArenaMeta {
        model: MODEL_KEY.to_string(),
        protocol: PROTOCOL_KEY.to_string(),
        n: cfg.n as u64,
        horizon: horizon as u64,
        depth: cfg.depth as u64,
        layering: layering.to_string(),
    }
}

/// Packages a finished layer scan and its supporting witness as a
/// `lemma_5_1` scan-verdict certificate, ready for a `--store` directory.
fn scan_certificate<M: LayeredModel>(
    model: &M,
    layering: &str,
    depth: usize,
    horizon: usize,
    scan: (usize, usize, bool),
    witness: &ImpossibilityWitness<M::State>,
    snapshot_sha256: Option<&str>,
) -> Option<Certificate> {
    let (layers_checked, states_seen, connected) = scan;
    let witness_json = witness_to_json(model, witness).ok()?;
    let mut body = vec![
        ("depth".into(), Json::from(depth as u64)),
        ("horizon".into(), Json::from(horizon as u64)),
        ("layers_checked".into(), Json::from(layers_checked as u64)),
        ("states_seen".into(), Json::from(states_seen as u64)),
        ("connected".into(), Json::from(connected)),
        ("witness".into(), witness_json),
    ];
    // Tie the verdict to the exact arena it was computed over (or resumed
    // from): a cold `--snapshot` run and a warm `--resume` run of the same
    // scan produce byte-identical certificates, which is how CI asserts
    // the warm path recomputed nothing it shouldn't have.
    if let Some(h) = snapshot_sha256 {
        body.push(("snapshot_sha256".into(), Json::from(h)));
    }
    Some(Certificate::new(
        CertMeta {
            model: MODEL_KEY.to_string(),
            n: model.num_processes(),
            layering: layering.to_string(),
            claim: "lemma_5_1".to_string(),
        },
        CertKind::ScanVerdict,
        Json::Object(body),
    ))
}

/// Parameters of the `--scan` mode.
#[derive(Clone, Debug)]
pub struct ScanConfig {
    /// Number of processes (default 4 — the size the interning unlocked).
    pub n: usize,
    /// Scan depth: layers of every bivalent state down to this depth are
    /// checked for valence connectivity.
    pub depth: usize,
    /// Worker threads for the parallel expansion path.
    pub threads: usize,
    /// Run the symmetry-reduced quotient scan instead of the plain
    /// interned scan (the `--quotient` flag).
    pub quotient: bool,
    /// Valence horizon override (the `--horizon` flag). `None` keeps the
    /// historical coupling `horizon = depth + 1`; setting it explicitly is
    /// what lets a resumed scan deepen `depth` without silently moving the
    /// FloodMin deadline (a deadline move is a protocol change and triggers
    /// the differential refresh instead).
    pub horizon: Option<usize>,
    /// Directory to write an arena snapshot into after the scan (the
    /// `--snapshot` flag).
    pub snapshot_dir: Option<String>,
    /// Directory to load an arena snapshot from before the scan (the
    /// `--resume` flag).
    pub resume_dir: Option<String>,
    /// Store states packed (bitfield words) when the model provides a
    /// codec. `false` (the `--boxed` flag) forces boxed storage — the
    /// cross-check path that demonstrates packing is representation-only.
    pub packed: bool,
}

impl ScanConfig {
    /// The effective valence horizon of the scan.
    #[must_use]
    pub fn effective_horizon(&self) -> usize {
        self.horizon.unwrap_or(self.depth + 1)
    }
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            n: 4,
            depth: 1,
            threads: 4,
            quotient: false,
            horizon: None,
            snapshot_dir: None,
            resume_dir: None,
            packed: true,
        }
    }
}

/// Runs the Lemma 5.1 layer scan sequentially and in parallel on the mobile
/// model and cross-checks the results (see the module docs).
#[must_use]
pub fn interned_scan(cfg: &ScanConfig) -> Experiment {
    interned_scan_with(cfg, &NOOP)
}

/// [`interned_scan`] with an extra observer teed alongside the metrics
/// registry — pass a `TraceObserver` here to capture the span tree for
/// `--trace` / `--profile`.
#[must_use]
pub fn interned_scan_with(cfg: &ScanConfig, trace: &dyn Observer) -> Experiment {
    interned_scan_certified(cfg, trace).0
}

/// [`interned_scan_with`], additionally packaging the scan verdict and its
/// witness as a storable certificate (`None` when the witness could not be
/// built — in which case the experiment is not `ok` either).
#[must_use]
pub fn interned_scan_certified(
    cfg: &ScanConfig,
    trace: &dyn Observer,
) -> (Experiment, Option<Certificate>) {
    let cfg = cfg.clone();
    let slot: RefCell<Option<Certificate>> = RefCell::new(None);
    let slot_ref = &slot;
    let exp = crate::measured_with(
        "E-scan",
        "Lemma 5.1 layer scan on interned state spaces (sequential ≡ parallel)",
        trace,
        move |obs| {
            let mut table = Table::new(
                "Interned layer scan — sequential vs. parallel expansion",
                &[
                    "model",
                    "n",
                    "path",
                    "layers checked",
                    "states seen",
                    "all val-conn",
                    "wall ms",
                ],
            );
            let horizon = cfg.effective_horizon();
            let m = MobileModel::new(cfg.n, FloodMin::new(horizon as u16));

            // Resume: restore the arena twice (the sequential and parallel
            // paths must stay independent to mean anything as a
            // cross-check), refreshing differentially if the deadline
            // moved since the snapshot was taken.
            let mut resume_err: Option<String> = None;
            let mut resume_note: Option<String> = None;
            let mut snapshot_hash: Option<String> = None;
            let mut spaces = None;
            if let Some(dir) = &cfg.resume_dir {
                let loaded = read_snapshot(dir, STATE_SNAPSHOT_FILE).and_then(|bytes| {
                    let (a, meta, hash) = load_space(&m, &bytes, obs).map_err(|e| e.to_string())?;
                    let (b, _, _) = load_space(&m, &bytes, obs).map_err(|e| e.to_string())?;
                    check_resume_compat(&meta, cfg.n, "s1")?;
                    Ok((a, b, meta, hash))
                });
                match loaded {
                    Ok((mut a, mut b, meta, hash)) => {
                        if meta.horizon == horizon as u64 {
                            resume_note = Some(format!(
                                "resumed: {} states, {} edges reused",
                                a.len(),
                                a.edge_count()
                            ));
                        } else {
                            let diff = a.refresh_differential(&m, obs);
                            b.refresh_differential(&m, obs);
                            resume_note = Some(format!(
                                "deadline {} -> {horizon}: {} rows reused, {} recomputed",
                                meta.horizon, diff.reused, diff.recomputed
                            ));
                        }
                        snapshot_hash = Some(hash);
                        spaces = Some((a, b));
                    }
                    Err(e) => resume_err = Some(e),
                }
            }
            let (seq_space, par_space) = match spaces {
                Some((a, b)) => (Some(a), Some(b)),
                None => (None, None),
            };

            let start = clock::monotonic_ns();
            let mut solver = match seq_space {
                Some(space) => ValenceSolver::with_space(&m, horizon, space, obs),
                None if cfg.packed => ValenceSolver::with_observer(&m, horizon, obs),
                None => ValenceSolver::with_space(&m, horizon, StateSpace::new(), obs),
            };
            let seq = scan_layer_valence_connectivity(&mut solver, cfg.depth, true);
            let seq_ms = clock::monotonic_ns().saturating_sub(start) as f64 / 1e6;

            // Snapshot the (possibly extended) sequential arena before the
            // certificate is built, so the verdict can carry its hash.
            if resume_err.is_none() {
                if let Some(dir) = &cfg.snapshot_dir {
                    let meta = scan_meta(&cfg, horizon, "s1");
                    let (bytes, hash) = save_space(solver.space(), &meta, obs);
                    match write_snapshot(dir, STATE_SNAPSHOT_FILE, &bytes) {
                        Ok(()) => snapshot_hash = Some(hash),
                        Err(e) => resume_err = Some(e),
                    }
                }
            }

            let start = clock::monotonic_ns();
            let mut solver = match par_space {
                Some(space) => ValenceSolver::with_space(&m, horizon, space, obs),
                None if cfg.packed => ValenceSolver::with_observer(&m, horizon, obs),
                None => ValenceSolver::with_space(&m, horizon, StateSpace::new(), obs),
            };
            let par =
                scan_layer_valence_connectivity_parallel(&mut solver, cfg.depth, true, cfg.threads);
            let par_ms = clock::monotonic_ns().saturating_sub(start) as f64 / 1e6;
            solver.report_memory(obs);

            let identical = seq == par;
            let witness = ImpossibilityWitness::build(&m, horizon, cfg.depth);
            let verified = witness.as_ref().is_some_and(|w| w.verify(&m).is_ok());
            if let Some(w) = &witness {
                *slot_ref.borrow_mut() = scan_certificate(
                    &m,
                    "s1",
                    cfg.depth,
                    horizon,
                    (seq.layers_checked, seq.states_seen, seq.all_connected()),
                    w,
                    snapshot_hash.as_deref(),
                );
            }

            for (path, scan, ms) in [("sequential", &seq, seq_ms), ("parallel", &par, par_ms)] {
                table.row_owned(vec![
                    "M^mf (S₁)".to_string(),
                    cfg.n.to_string(),
                    path.to_string(),
                    scan.layers_checked.to_string(),
                    scan.states_seen.to_string(),
                    if scan.all_connected() { "yes" } else { "no" }.to_string(),
                    format!("{ms:.1}"),
                ]);
            }
            table.row_owned(vec![
                "M^mf (S₁)".to_string(),
                cfg.n.to_string(),
                "cross-check".to_string(),
                "-".to_string(),
                "-".to_string(),
                if identical { "identical" } else { "DIVERGED" }.to_string(),
                if verified {
                    "witness ok"
                } else {
                    "witness BAD"
                }
                .to_string(),
            ]);
            for (label, msg) in [("resume", &resume_note), ("snapshot ERROR", &resume_err)] {
                if let Some(msg) = msg {
                    table.row_owned(vec![
                        "M^mf (S₁)".to_string(),
                        cfg.n.to_string(),
                        label.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        msg.clone(),
                        "-".to_string(),
                    ]);
                }
            }

            (
                table,
                identical && seq.all_connected() && verified && resume_err.is_none(),
            )
        },
    );
    (exp, slot.into_inner())
}

/// Runs the symmetry-reduced Lemma 5.1 layer scan over canonical orbits
/// (the `--scan --quotient` mode).
///
/// The mobile model is switched to its equivariant `Full` layering and the
/// scan walks the quotient under process renaming. At n ≤ 5 the full-space
/// scan is run alongside as a baseline (packed encodings pushed the full
/// engine past its old n = 4 wall) and the two must reach the same lemma
/// verdict — with the quotient visiting at least 3× fewer states at
/// n ≥ 4 (the acceptance bound). At n ≥ 6 only the quotient runs: the
/// whole point of the reduction is that the full space is out of reach
/// there. In every case the de-quotiented witness must re-verify against
/// the full model.
#[must_use]
pub fn quotient_scan(cfg: &ScanConfig) -> Experiment {
    quotient_scan_with(cfg, &NOOP)
}

/// [`quotient_scan`] with an extra observer teed alongside the metrics
/// registry — pass a `TraceObserver` here to capture the span tree for
/// `--trace` / `--profile`.
#[must_use]
pub fn quotient_scan_with(cfg: &ScanConfig, trace: &dyn Observer) -> Experiment {
    quotient_scan_certified(cfg, trace).0
}

/// [`quotient_scan_with`], additionally packaging the quotient scan
/// verdict and its de-quotiented witness as a storable certificate (the
/// layering key is `full` — the equivariant layering the quotient runs
/// under).
#[must_use]
pub fn quotient_scan_certified(
    cfg: &ScanConfig,
    trace: &dyn Observer,
) -> (Experiment, Option<Certificate>) {
    let cfg = cfg.clone();
    let slot: RefCell<Option<Certificate>> = RefCell::new(None);
    let slot_ref = &slot;
    let exp = crate::measured_with(
        "E-sym",
        "Lemma 5.1 layer scan over canonical orbits (quotient ≡ full verdicts)",
        trace,
        move |obs| {
            let mut table = Table::new(
                "Symmetry-reduced layer scan — canonical orbits vs. the full space",
                &[
                    "model",
                    "n",
                    "space",
                    "layers checked",
                    "states seen",
                    "all val-conn",
                    "wall ms",
                ],
            );
            let horizon = cfg.effective_horizon();
            let m = MobileModel::new(cfg.n, FloodMin::new(horizon as u16))
                .with_layering(MobileLayering::Full);
            let model_label = "M^mf (Full)";

            // Resume: restore the quotient arena for the sequential and
            // parallel paths independently (see the interned twin).
            let mut resume_err: Option<String> = None;
            let mut resume_note: Option<String> = None;
            let mut snapshot_hash: Option<String> = None;
            let mut spaces = None;
            if let Some(dir) = &cfg.resume_dir {
                let loaded = read_snapshot(dir, QUOTIENT_SNAPSHOT_FILE).and_then(|bytes| {
                    let (a, meta, hash) =
                        load_quotient(&m, &bytes, obs).map_err(|e| e.to_string())?;
                    let (b, _, _) = load_quotient(&m, &bytes, obs).map_err(|e| e.to_string())?;
                    check_resume_compat(&meta, cfg.n, "full")?;
                    Ok((a, b, meta, hash))
                });
                match loaded {
                    Ok((mut a, mut b, meta, hash)) => {
                        if meta.horizon == horizon as u64 {
                            resume_note = Some(format!(
                                "resumed: {} orbits, {} edges reused",
                                a.len(),
                                a.edge_count()
                            ));
                        } else {
                            let diff = a.refresh_differential(&m, obs);
                            b.refresh_differential(&m, obs);
                            resume_note = Some(format!(
                                "deadline {} -> {horizon}: {} orbits reused, {} recomputed",
                                meta.horizon, diff.reused, diff.recomputed
                            ));
                        }
                        snapshot_hash = Some(hash);
                        spaces = Some((a, b));
                    }
                    Err(e) => resume_err = Some(e),
                }
            }
            let (seq_space, par_space) = match spaces {
                Some((a, b)) => (Some(a), Some(b)),
                None => (None, None),
            };

            // Quotient scan, sequential and parallel expansion paths.
            let start = clock::monotonic_ns();
            let mut solver = match seq_space {
                Some(space) => QuotientSolver::with_space(&m, horizon, space, obs),
                None if cfg.packed => QuotientSolver::with_observer(&m, horizon, obs),
                None => QuotientSolver::with_space(&m, horizon, QuotientSpace::new_boxed(&m), obs),
            };
            let quot = scan_layer_valence_connectivity_quotient(&mut solver, cfg.depth, true);
            let quot_ms = clock::monotonic_ns().saturating_sub(start) as f64 / 1e6;
            let orbits = solver.space().len();
            let covered = solver.space().covered_states();

            // Snapshot the (possibly extended) sequential quotient arena
            // before the certificate is built.
            if resume_err.is_none() {
                if let Some(dir) = &cfg.snapshot_dir {
                    let meta = scan_meta(&cfg, horizon, "full");
                    let (bytes, hash) = save_quotient(solver.space(), &meta, obs);
                    match write_snapshot(dir, QUOTIENT_SNAPSHOT_FILE, &bytes) {
                        Ok(()) => snapshot_hash = Some(hash),
                        Err(e) => resume_err = Some(e),
                    }
                }
            }

            let start = clock::monotonic_ns();
            let mut par_solver = match par_space {
                Some(space) => QuotientSolver::with_space(&m, horizon, space, obs),
                None if cfg.packed => QuotientSolver::with_observer(&m, horizon, obs),
                None => QuotientSolver::with_space(&m, horizon, QuotientSpace::new_boxed(&m), obs),
            };
            let par = scan_layer_valence_connectivity_quotient_parallel(
                &mut par_solver,
                cfg.depth,
                true,
                cfg.threads,
            );
            let par_ms = clock::monotonic_ns().saturating_sub(start) as f64 / 1e6;
            par_solver.report_memory(obs);
            let paths_agree = quot == par;

            // Full-space baseline, only at sizes the full engine can reach
            // (n = 5 became reachable when the arenas went packed).
            let full = (cfg.n <= 5).then(|| {
                let start = clock::monotonic_ns();
                let mut solver = if cfg.packed {
                    ValenceSolver::with_observer(&m, horizon, obs)
                } else {
                    ValenceSolver::with_space(&m, horizon, StateSpace::new(), obs)
                };
                let scan = scan_layer_valence_connectivity(&mut solver, cfg.depth, true);
                (
                    scan,
                    clock::monotonic_ns().saturating_sub(start) as f64 / 1e6,
                )
            });

            let witness = ImpossibilityWitness::build_quotient(&m, horizon, cfg.depth);
            let verified = witness.as_ref().is_some_and(|w| w.verify(&m).is_ok());
            if let Some(w) = &witness {
                *slot_ref.borrow_mut() = scan_certificate(
                    &m,
                    "full",
                    cfg.depth,
                    horizon,
                    (quot.layers_checked, quot.states_seen, quot.all_connected()),
                    w,
                    snapshot_hash.as_deref(),
                );
            }

            // Headline numbers as gauges so the JSON record carries the
            // full-vs-quotient comparison as stable machine-readable fields.
            obs.gauge("scan.sym.n", cfg.n as u64);
            obs.gauge("scan.sym.quotient.states_seen", quot.states_seen as u64);
            obs.gauge("scan.sym.quotient.wall_ns", (quot_ms * 1e6) as u64);
            if let Some((scan, ms)) = &full {
                obs.gauge("scan.sym.full.states_seen", scan.states_seen as u64);
                obs.gauge("scan.sym.full.wall_ns", (*ms * 1e6) as u64);
            }

            let mut rows: Vec<(&str, &layered_core::LayerScan<_>, f64)> = Vec::new();
            if let Some((scan, ms)) = &full {
                rows.push(("full", scan, *ms));
            }
            rows.push(("quotient (seq)", &quot, quot_ms));
            rows.push(("quotient (par)", &par, par_ms));
            for (space, scan, ms) in rows {
                table.row_owned(vec![
                    model_label.to_string(),
                    cfg.n.to_string(),
                    space.to_string(),
                    scan.layers_checked.to_string(),
                    scan.states_seen.to_string(),
                    if scan.all_connected() { "yes" } else { "no" }.to_string(),
                    format!("{ms:.1}"),
                ]);
            }

            let parity = full
                .as_ref()
                .is_none_or(|(scan, _)| scan.violation.is_none() == quot.violation.is_none());
            // Acceptance bound on the reduction: ≥ 3× fewer states at
            // n = 4, ≥ 10× at n = 5 (the orbit factor grows with n!, so
            // the bar rises with the sizes packed arenas made reachable).
            let factor = if cfg.n >= 5 { 10 } else { 3 };
            let reduced = cfg.n < 4
                || full
                    .as_ref()
                    .is_none_or(|(scan, _)| scan.states_seen >= factor * quot.states_seen);
            table.row_owned(vec![
                model_label.to_string(),
                cfg.n.to_string(),
                "cross-check".to_string(),
                format!("{orbits} orbits"),
                format!("{covered} covered"),
                match (&full, parity, reduced) {
                    (None, _, _) => "quotient only".to_string(),
                    (Some(_), true, true) => "verdicts agree".to_string(),
                    (Some(_), false, _) => "verdict DIVERGED".to_string(),
                    (Some(_), _, false) => format!("reduction < {factor}x"),
                },
                if verified {
                    "witness ok"
                } else {
                    "witness BAD"
                }
                .to_string(),
            ]);
            for (label, msg) in [("resume", &resume_note), ("snapshot ERROR", &resume_err)] {
                if let Some(msg) = msg {
                    table.row_owned(vec![
                        model_label.to_string(),
                        cfg.n.to_string(),
                        label.to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        msg.clone(),
                        "-".to_string(),
                    ]);
                }
            }

            (
                table,
                paths_agree
                    && parity
                    && reduced
                    && verified
                    && quot.all_connected()
                    && resume_err.is_none(),
            )
        },
    );
    (exp, slot.into_inner())
}
