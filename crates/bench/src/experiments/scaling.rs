//! Scaling experiment for the interned state spaces: a Lemma 5.1 instance
//! (layer valence connectivity in the mobile-failure model) at n = 4,
//! run through both the sequential and the parallel expansion path.
//!
//! This is the acceptance experiment for the dense-id refactor: the two
//! paths must produce identical [`LayerScan`] reports, and the witness the
//! interned Theorem 4.2 engine extracts must still re-verify from scratch.
//! n = 4 was out of enumeration reach for the state-keyed engines; the
//! `--scan` mode of the `experiments` binary runs this instance in CI.

use std::time::Instant;

use layered_core::report::Table;
use layered_core::{
    scan_layer_valence_connectivity, scan_layer_valence_connectivity_parallel,
    ImpossibilityWitness, ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::MobileModel;

use crate::Experiment;

/// Parameters of the `--scan` mode.
#[derive(Clone, Debug)]
pub struct ScanConfig {
    /// Number of processes (default 4 — the size the interning unlocked).
    pub n: usize,
    /// Scan depth: layers of every bivalent state down to this depth are
    /// checked for valence connectivity.
    pub depth: usize,
    /// Worker threads for the parallel expansion path.
    pub threads: usize,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            n: 4,
            depth: 1,
            threads: 4,
        }
    }
}

/// Runs the Lemma 5.1 layer scan sequentially and in parallel on the mobile
/// model and cross-checks the results (see the module docs).
#[must_use]
pub fn interned_scan(cfg: &ScanConfig) -> Experiment {
    let cfg = cfg.clone();
    crate::measured(
        "E-scan",
        "Lemma 5.1 layer scan on interned state spaces (sequential ≡ parallel)",
        move |obs| {
            let mut table = Table::new(
                "Interned layer scan — sequential vs. parallel expansion",
                &[
                    "model",
                    "n",
                    "path",
                    "layers checked",
                    "states seen",
                    "all val-conn",
                    "wall ms",
                ],
            );
            let horizon = cfg.depth + 1;
            let m = MobileModel::new(cfg.n, FloodMin::new(horizon as u16));

            let start = Instant::now();
            let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
            let seq = scan_layer_valence_connectivity(&mut solver, cfg.depth, true);
            let seq_ms = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
            let par =
                scan_layer_valence_connectivity_parallel(&mut solver, cfg.depth, true, cfg.threads);
            let par_ms = start.elapsed().as_secs_f64() * 1e3;

            let identical = seq == par;
            let witness = ImpossibilityWitness::build(&m, horizon, cfg.depth);
            let verified = witness.is_some_and(|w| w.verify(&m).is_ok());

            for (path, scan, ms) in [("sequential", &seq, seq_ms), ("parallel", &par, par_ms)] {
                table.row_owned(vec![
                    "M^mf (S₁)".to_string(),
                    cfg.n.to_string(),
                    path.to_string(),
                    scan.layers_checked.to_string(),
                    scan.states_seen.to_string(),
                    if scan.all_connected() { "yes" } else { "no" }.to_string(),
                    format!("{ms:.1}"),
                ]);
            }
            table.row_owned(vec![
                "M^mf (S₁)".to_string(),
                cfg.n.to_string(),
                "cross-check".to_string(),
                "-".to_string(),
                "-".to_string(),
                if identical { "identical" } else { "DIVERGED" }.to_string(),
                if verified {
                    "witness ok"
                } else {
                    "witness BAD"
                }
                .to_string(),
            ]);

            (table, identical && seq.all_connected() && verified)
        },
    )
}
