//! Round-trip experiment for the persistent arenas: snapshot, resume,
//! extend, and differentially re-verify — all in memory.
//!
//! This is the acceptance experiment for the snapshot subsystem. Four
//! properties are checked on one FloodMin instance of the mobile model:
//!
//! 1. **Warm reload** — a scan over a reloaded arena is bit-identical to
//!    the cold scan that produced the snapshot, and at least 5× faster
//!    (the arena's successor cache replaces all model and
//!    canonicalization work).
//! 2. **Resume-and-extend** — deepening the scan by one layer over the
//!    reloaded arena matches a cold scan at the deeper depth, on both the
//!    sequential and the parallel expansion path (the seq ≡ par contract
//!    survives save/load).
//! 3. **Interned twin** — the plain (non-quotient) arena round-trips and
//!    extends the same way.
//! 4. **Differential refresh** — after a *protocol change* (the FloodMin
//!    deadline moves by one round), reloading the stale snapshot and
//!    refreshing it re-expands only the arena rows whose raw successor
//!    sets actually moved, and the scan over the refreshed arena matches
//!    a cold scan under the changed protocol.
//!
//! The deadline change is the canonical differential case: rows more than
//! one round below the old deadline keep their successor sets (the
//! protocol behaves identically far from the deadline), while rows
//! adjacent to it change — so the refresh must both reuse *and* recompute
//! something for the experiment to pass.

use layered_core::report::Table;
use layered_core::telemetry::clock;
use layered_core::{
    load_quotient, load_space, save_quotient, save_space, scan_layer_valence_connectivity,
    scan_layer_valence_connectivity_parallel, scan_layer_valence_connectivity_quotient,
    scan_layer_valence_connectivity_quotient_parallel, ArenaMeta, QuotientSolver, ValenceSolver,
};
use layered_protocols::FloodMin;
use layered_sync_mobile::{MobileLayering, MobileModel, MODEL_KEY};

use crate::experiments::scaling::ScanConfig;
use crate::Experiment;

/// Provenance stamped on the in-memory snapshots the experiment writes.
fn meta(cfg: &ScanConfig, horizon: usize, depth: usize, layering: &str) -> ArenaMeta {
    ArenaMeta {
        model: MODEL_KEY.to_string(),
        protocol: "floodmin".to_string(),
        n: cfg.n as u64,
        horizon: horizon as u64,
        depth: depth as u64,
        layering: layering.to_string(),
    }
}

/// Renders a pass/fail cell.
fn verdict(ok: bool) -> String {
    if ok { "yes" } else { "NO" }.to_string()
}

/// Runs the snapshot round-trip acceptance experiment (see the module
/// docs). `cfg.n` and `cfg.depth` choose the instance; the valence
/// horizon is pinned to `depth + 2` so the extension step can deepen the
/// scan without moving the FloodMin deadline.
#[must_use]
pub fn resume_roundtrip(cfg: &ScanConfig) -> Experiment {
    let cfg = cfg.clone();
    crate::measured(
        "E-resume",
        "Persistent arenas: resumed scans are bit-identical to cold scans",
        move |obs| {
            let mut table = Table::new(
                "Snapshot round-trip — cold vs. resumed scans",
                &["pipeline", "case", "outcome", "identical"],
            );
            let depth0 = cfg.depth;
            let deeper = depth0 + 1;
            // Room to deepen by one layer with the deadline fixed.
            let horizon = depth0 + 2;
            let m = MobileModel::new(cfg.n, FloodMin::new(horizon as u16))
                .with_layering(MobileLayering::Full);

            // 1. Cold quotient scan; snapshot the arena.
            let t0 = clock::monotonic_ns();
            let mut cold = QuotientSolver::with_observer(&m, horizon, obs);
            let cold_scan = scan_layer_valence_connectivity_quotient(&mut cold, depth0, true);
            let cold_ns = clock::monotonic_ns().saturating_sub(t0).max(1);
            let (qbytes, _) =
                save_quotient(cold.space(), &meta(&cfg, horizon, depth0, "full"), obs);

            // 2. Warm reload at the same depth: identical verdict, ≥5×
            // faster (every successor row comes from the snapshot).
            let t0 = clock::monotonic_ns();
            let warm_scan = load_quotient(&m, &qbytes, obs).ok().map(|(space, _, _)| {
                let mut warm = QuotientSolver::with_space(&m, horizon, space, obs);
                scan_layer_valence_connectivity_quotient(&mut warm, depth0, true)
            });
            let warm_ns = clock::monotonic_ns().saturating_sub(t0).max(1);
            let warm_identical = warm_scan.as_ref() == Some(&cold_scan);
            let speedup_x1000 = cold_ns.saturating_mul(1000) / warm_ns;
            obs.gauge("scan.sym.n", cfg.n as u64);
            obs.gauge("scan.resume.cold_wall_ns", cold_ns);
            obs.gauge("scan.resume.warm_wall_ns", warm_ns);
            obs.gauge("scan.resume.speedup_x1000", speedup_x1000);
            let fast_enough = speedup_x1000 >= 5_000;
            table.row_owned(vec![
                "quotient".to_string(),
                format!("warm reload @ depth {depth0}"),
                format!("speedup x1000 = {speedup_x1000}"),
                verdict(warm_identical),
            ]);

            // 3. Resume-and-extend, sequential and parallel, vs. cold
            // scans at the deeper depth.
            let mut cs = QuotientSolver::with_observer(&m, horizon, obs);
            let cold_deep_seq = scan_layer_valence_connectivity_quotient(&mut cs, deeper, true);
            let mut cp = QuotientSolver::with_observer(&m, horizon, obs);
            let cold_deep_par = scan_layer_valence_connectivity_quotient_parallel(
                &mut cp,
                deeper,
                true,
                cfg.threads,
            );
            let resumed_seq = load_quotient(&m, &qbytes, obs).ok().map(|(space, _, _)| {
                let mut s = QuotientSolver::with_space(&m, horizon, space, obs);
                scan_layer_valence_connectivity_quotient(&mut s, deeper, true)
            });
            let resumed_par = load_quotient(&m, &qbytes, obs).ok().map(|(space, _, _)| {
                let mut s = QuotientSolver::with_space(&m, horizon, space, obs);
                scan_layer_valence_connectivity_quotient_parallel(&mut s, deeper, true, cfg.threads)
            });
            let extend_identical = cold_deep_seq == cold_deep_par
                && resumed_seq.as_ref() == Some(&cold_deep_seq)
                && resumed_par.as_ref() == Some(&cold_deep_par);
            table.row_owned(vec![
                "quotient".to_string(),
                format!("extend to depth {deeper} (seq + par)"),
                format!("{} states seen", cold_deep_seq.states_seen),
                verdict(extend_identical),
            ]);

            // 4. The interned (non-quotient) pipeline: round-trip and
            // extend through the plain arena.
            let mi = MobileModel::new(cfg.n, FloodMin::new(horizon as u16));
            let mut icold = ValenceSolver::with_observer(&mi, horizon, obs);
            let icold_scan = scan_layer_valence_connectivity(&mut icold, depth0, true);
            let (ibytes, _) = save_space(icold.space(), &meta(&cfg, horizon, depth0, "s1"), obs);
            let mut ideep = ValenceSolver::with_observer(&mi, horizon, obs);
            let icold_deep_seq = scan_layer_valence_connectivity(&mut ideep, deeper, true);
            let mut ideep_par = ValenceSolver::with_observer(&mi, horizon, obs);
            let icold_deep_par =
                scan_layer_valence_connectivity_parallel(&mut ideep_par, deeper, true, cfg.threads);
            let iwarm = load_space(&mi, &ibytes, obs).ok().map(|(space, _, _)| {
                let mut s = ValenceSolver::with_space(&mi, horizon, space, obs);
                scan_layer_valence_connectivity(&mut s, depth0, true)
            });
            let iresumed = load_space(&mi, &ibytes, obs).ok().map(|(space, _, _)| {
                let mut s = ValenceSolver::with_space(&mi, horizon, space, obs);
                scan_layer_valence_connectivity(&mut s, deeper, true)
            });
            let iresumed_par = load_space(&mi, &ibytes, obs).ok().map(|(space, _, _)| {
                let mut s = ValenceSolver::with_space(&mi, horizon, space, obs);
                scan_layer_valence_connectivity_parallel(&mut s, deeper, true, cfg.threads)
            });
            let interned_identical = iwarm.as_ref() == Some(&icold_scan)
                && icold_deep_seq == icold_deep_par
                && iresumed.as_ref() == Some(&icold_deep_seq)
                && iresumed_par.as_ref() == Some(&icold_deep_par);
            table.row_owned(vec![
                "interned".to_string(),
                format!("reload @ {depth0}, extend to {deeper} (seq + par)"),
                format!("{} states seen", icold_deep_seq.states_seen),
                verdict(interned_identical),
            ]);

            // 5. Differential refresh after a protocol change: the
            // FloodMin deadline moves one round later, the stale quotient
            // snapshot is refreshed, and the scan over it must match a
            // cold scan under the changed protocol — with the refresh
            // both reusing and recomputing rows.
            let h2 = horizon + 1;
            let m2 = MobileModel::new(cfg.n, FloodMin::new(h2 as u16))
                .with_layering(MobileLayering::Full);
            let mut cold2 = QuotientSolver::with_observer(&m2, h2, obs);
            let cold2_scan = scan_layer_valence_connectivity_quotient(&mut cold2, depth0, true);
            let refreshed = load_quotient(&m2, &qbytes, obs)
                .ok()
                .map(|(mut space, _, _)| {
                    let diff = space.refresh_differential(&m2, obs);
                    let mut s = QuotientSolver::with_space(&m2, h2, space, obs);
                    (
                        scan_layer_valence_connectivity_quotient(&mut s, depth0, true),
                        diff,
                    )
                });
            let (diff_identical, diff_partial, diff_label) = match &refreshed {
                Some((scan, diff)) => (
                    *scan == cold2_scan,
                    diff.reused > 0 && diff.recomputed > 0,
                    format!("{} reused, {} recomputed", diff.reused, diff.recomputed),
                ),
                None => (false, false, "reload FAILED".to_string()),
            };
            table.row_owned(vec![
                "quotient".to_string(),
                format!("deadline {horizon} -> {h2}, differential refresh"),
                diff_label,
                verdict(diff_identical && diff_partial),
            ]);

            (
                table,
                warm_identical
                    && fast_enough
                    && extend_identical
                    && interned_identical
                    && diff_identical
                    && diff_partial,
            )
        },
    )
}
