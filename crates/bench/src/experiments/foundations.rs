//! Experiments for the model-independent core: Lemmas 3.1, 3.2, 3.6 and
//! Theorem 4.2, instantiated in every model.

use layered_async_mp::MpModel;
use layered_async_sm::SmModel;
use layered_core::report::{yes_no, Table};
use layered_core::telemetry::Observer;
use layered_core::{
    build_bivalent_run, check_lemma_3_1, check_lemma_3_2, scan_layer_valence_connectivity,
    scan_layer_valence_connectivity_parallel, similarity_report_with, valence_report, LayeredModel,
    Valence, ValenceSolver,
};
use layered_protocols::{FloodMin, MpFloodMin, SmFloodMin};
use layered_sync_crash::CrashModel;
use layered_sync_mobile::MobileModel;

use crate::{Experiment, Scope};

fn lemma_3_6_row<M: LayeredModel>(
    model: &M,
    name: &str,
    horizon: usize,
    table: &mut Table,
    obs: &dyn Observer,
) -> bool {
    let inits = model.initial_states();
    let sim = similarity_report_with(model, &inits, obs);
    let mut solver = ValenceSolver::with_observer(model, horizon, obs);
    let val = valence_report(model, &mut solver, &inits);
    let bivalent = inits
        .iter()
        .filter(|x| solver.valence(x) == Valence::Bivalent)
        .count();
    table.row_owned(vec![
        name.to_string(),
        model.num_processes().to_string(),
        inits.len().to_string(),
        yes_no(sim.connected).to_string(),
        sim.diameter.map_or("-".into(), |d| d.to_string()),
        yes_no(val.connected).to_string(),
        bivalent.to_string(),
    ]);
    sim.connected && val.connected && bivalent > 0
}

/// Lemma 3.6: `Con₀` is similarity connected; with decision + validity +
/// arbitrary-crash display it is valence connected and contains a bivalent
/// initial state. Checked in all four models.
pub fn lemma_3_6(scope: Scope) -> Experiment {
    crate::measured(
        "E-3.6",
        "Lemma 3.6 (bivalent initial state exists; Con₀ connected)",
        |obs| {
            let mut table = Table::new(
                "Lemma 3.6 — Con₀ connectivity and bivalent initial states",
                &[
                    "model",
                    "n",
                    "|Con₀|",
                    "sim-conn",
                    "s-diam",
                    "val-conn",
                    "#bivalent",
                ],
            );
            let mut ok = true;
            let ns: &[usize] = match scope {
                Scope::Quick => &[3],
                Scope::Full => &[2, 3, 4],
            };
            for &n in ns {
                ok &= lemma_3_6_row(
                    &MobileModel::new(n, FloodMin::new(2)),
                    "M^mf (S₁)",
                    2,
                    &mut table,
                    obs,
                );
                ok &= lemma_3_6_row(
                    &SmModel::new(n, SmFloodMin::new(2)),
                    "M^rw (S^rw)",
                    2,
                    &mut table,
                    obs,
                );
                if n <= 3 {
                    ok &= lemma_3_6_row(
                        &MpModel::new(n, MpFloodMin::new(2)),
                        "MP (S^per)",
                        2,
                        &mut table,
                        obs,
                    );
                }
                if n >= 3 {
                    ok &= lemma_3_6_row(
                        &CrashModel::new(n, 1, FloodMin::new(2)),
                        "sync t=1 (S^t)",
                        2,
                        &mut table,
                        obs,
                    );
                }
            }
            (table, ok)
        },
    )
}

/// Lemmas 3.1 and 3.2: the undecided-process bounds at bivalent states,
/// swept over every reachable state.
///
/// Both lemmas presuppose Agreement, so the subject protocols must satisfy
/// it on every run: the asynchronous rows use the RelayRace family
/// (agreement-safe by construction, genuinely bivalent), and the
/// synchronous rows use FloodMin at its correct deadline `t + 1`
/// (exhaustively verified by E-6.3).
pub fn lemma_3_1(scope: Scope) -> Experiment {
    crate::measured(
        "E-3.1",
        "Lemmas 3.1/3.2 (bivalence keeps processes undecided)",
        |obs| {
            let mut table = Table::new(
                "Lemmas 3.1/3.2 — undecided processes at bivalent states",
                &["model", "protocol", "n", "t", "depth", "claim", "holds"],
            );
            let mut ok = true;
            let depth = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };
            let horizon = depth + 2;

            // No-finite-failure models: the stronger Lemma 3.2 (nobody decided).
            let m = MobileModel::new(3, layered_protocols::SyncRelayRace);
            let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
            let holds = check_lemma_3_2(&mut solver, depth).is_none();
            ok &= holds;
            table.row(&[
                "M^mf (S₁)",
                "RelayRace",
                "3",
                "1",
                &depth.to_string(),
                "3.2: none decided",
                yes_no(holds),
            ]);

            let m = SmModel::new(3, layered_protocols::SmRelayRace);
            let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
            let holds = check_lemma_3_2(&mut solver, depth).is_none();
            ok &= holds;
            table.row(&[
                "M^rw (S^rw)",
                "RelayRace",
                "3",
                "1",
                &depth.to_string(),
                "3.2: none decided",
                yes_no(holds),
            ]);

            let m = MpModel::new(3, layered_protocols::MpRelayRace);
            let mut solver = ValenceSolver::with_observer(&m, horizon.min(3), obs);
            let holds = check_lemma_3_2(&mut solver, depth.min(2)).is_none();
            ok &= holds;
            table.row(&[
                "MP (S^per)",
                "RelayRace",
                "3",
                "1",
                &depth.min(2).to_string(),
                "3.2: none decided",
                yes_no(holds),
            ]);

            // Finite-failure model: Lemma 3.1's n - t bound, against the
            // verified t+1-round FloodMin.
            let m = CrashModel::new(3, 1, FloodMin::new(2));
            let mut solver = ValenceSolver::with_observer(&m, 2, obs);
            let holds = check_lemma_3_1(&mut solver, depth).is_none();
            ok &= holds;
            table.row(&[
                "sync t=1 (S^t)",
                "FloodMin(t+1)",
                "3",
                "1",
                &depth.to_string(),
                "3.1: ≥ n−t undecided",
                yes_no(holds),
            ]);

            if matches!(scope, Scope::Full) {
                let m = CrashModel::new(4, 2, FloodMin::new(3));
                let mut solver = ValenceSolver::with_observer(&m, 3, obs);
                let holds = check_lemma_3_1(&mut solver, 2).is_none();
                ok &= holds;
                table.row(&[
                    "sync t=2 (S^t)",
                    "FloodMin(t+1)",
                    "4",
                    "2",
                    "2",
                    "3.1: ≥ n−t undecided",
                    yes_no(holds),
                ]);
            }

            (table, ok)
        },
    )
}

/// Theorem 4.2: every layer of every model is valence connected over the
/// bivalent region, and an ever-bivalent run of the full horizon exists —
/// so no candidate protocol satisfies all of consensus.
pub fn theorem_4_2(scope: Scope) -> Experiment {
    crate::measured(
        "E-4.2",
        "Theorem 4.2 (ever-bivalent runs exist in every async model)",
        |obs| {
            let mut table = Table::new(
                "Theorem 4.2 — layer valence connectivity and bivalent runs",
                &[
                    "model",
                    "n",
                    "layers checked",
                    "all val-conn",
                    "run len",
                    "reached",
                ],
            );
            let mut ok = true;
            let depth = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };
            let horizon = depth + 1;

            macro_rules! run_for {
                ($model:expr, $name:expr, $n:expr) => {{
                    let m = $model;
                    let mut solver = ValenceSolver::with_observer(&m, horizon, obs);
                    let scan = scan_layer_valence_connectivity(&mut solver, depth, true);
                    // Cross-check: the parallel expansion path must report
                    // exactly what the sequential path did.
                    let mut par_solver = ValenceSolver::with_observer(&m, horizon, obs);
                    let par_scan =
                        scan_layer_valence_connectivity_parallel(&mut par_solver, depth, true, 4);
                    let run = build_bivalent_run(&mut solver, depth);
                    let reached = run.reached_target();
                    let len = run.chain.as_ref().map_or(0, |c| c.steps());
                    ok &= scan.all_connected() && scan == par_scan && reached;
                    table.row_owned(vec![
                        $name.to_string(),
                        $n.to_string(),
                        scan.layers_checked.to_string(),
                        yes_no(scan.all_connected()).to_string(),
                        len.to_string(),
                        yes_no(reached).to_string(),
                    ]);
                }};
            }

            run_for!(
                MobileModel::new(3, FloodMin::new(horizon as u16)),
                "M^mf (S₁)",
                3
            );
            run_for!(
                SmModel::new(3, SmFloodMin::new(horizon as u16)),
                "M^rw (S^rw)",
                3
            );
            run_for!(
                MpModel::new(3, MpFloodMin::new(horizon as u16)),
                "MP (S^per)",
                3
            );

            (table, ok)
        },
    )
}

/// Census: the size of the submodels the layerings induce — the
/// quantitative payoff of working in a layered submodel instead of the full
/// model (footnote 1 and the Section 5.1 discussion).
pub fn census(scope: Scope) -> Experiment {
    use layered_core::stats::census_with;
    crate::measured(
        "E-census",
        "Induced-submodel census (layerings keep the state space small)",
        |obs| {
            let mut table = Table::new(
                "Model census — induced state spaces, level by level",
                &[
                    "model",
                    "n",
                    "depth",
                    "states",
                    "avg layer",
                    "max layer",
                    "decided",
                ],
            );
            let depth = match scope {
                Scope::Quick => 1,
                Scope::Full => 2,
            };
            let mut ok = true;

            macro_rules! census_rows {
                ($model:expr, $name:expr, $n:expr) => {{
                    let m = $model;
                    let rows = census_with(&m, depth, obs);
                    for r in &rows {
                        table.row_owned(vec![
                            $name.to_string(),
                            $n.to_string(),
                            r.depth.to_string(),
                            r.states.to_string(),
                            format!("{:.1}", r.avg_layer()),
                            r.max_layer.to_string(),
                            r.with_decisions.to_string(),
                        ]);
                    }
                    // Sanity: state counts never shrink to zero mid-exploration.
                    ok &= rows.iter().all(|r| r.states > 0);
                }};
            }

            census_rows!(
                MobileModel::new(3, FloodMin::new((depth + 1) as u16)),
                "M^mf (S₁)",
                3
            );
            census_rows!(
                SmModel::new(3, SmFloodMin::new((depth + 1) as u16)),
                "M^rw (S^rw)",
                3
            );
            census_rows!(
                MpModel::new(3, MpFloodMin::new((depth + 1) as u16)),
                "MP (S^per)",
                3
            );
            census_rows!(
                CrashModel::new(3, 1, FloodMin::new((depth + 1) as u16)),
                "sync t=1 (S^t)",
                3
            );
            census_rows!(
                layered_iis::IisModel::new(3, SmFloodMin::new((depth + 1) as u16)),
                "IIS (skip-1)",
                3
            );

            (table, ok)
        },
    )
}
