//! Experiments for Section 5: the three 1-resilient impossibility results
//! (mobile failures, shared memory, message passing), each as a structural
//! check plus a protocol-refutation sweep.

use layered_async_mp::{permutations, MpModel};
use layered_async_sm::{layer_action_is_legal_schedule, SmModel};
use layered_core::report::{yes_no, Table};
use layered_core::{
    build_bivalent_run, check_consensus_with, check_crash_display, check_fault_independence,
    check_graded, similarity_report_with, valence_report, LayeredModel, Pid, ValenceSolver, Value,
};
use layered_iis::IisModel;
use layered_protocols::{FloodMin, FullInfoMin, MpCollectMin, MpFloodMin, SmFloodMin};
use layered_sync_mobile::MobileModel;

use crate::{Experiment, Scope};

/// Lemma 5.1 + Corollary 5.2: the mobile-failure model.
///
/// Checks, per candidate protocol: (i) `S₁` layers are legal `M^mf` rounds,
/// (ii) structural properties (grading, fault independence, crash display),
/// (iii) `S₁(x)` similarity connected over the explored region, and finally
/// (iv) the consensus checker's verdict — which must be a violation, for
/// every deadline, as Corollary 5.2 dictates.
pub fn mobile(scope: Scope) -> Experiment {
    crate::measured(
        "E-5.2",
        "Corollary 5.2 (no consensus under one mobile failure)",
        |obs| {
            let mut table = Table::new(
                "Lemma 5.1 / Corollary 5.2 — single mobile failure (M^mf, S₁)",
                &[
                    "protocol",
                    "deadline",
                    "states",
                    "layers sim-conn",
                    "verdict",
                ],
            );
            let mut ok = true;

            // Structural facts once (protocol-independent mechanics).
            let m = MobileModel::new(3, FloodMin::new(2));
            let x0 = m.initial_state(&[Value::ZERO, Value::ONE, Value::ONE]);
            let structural = m.s1_is_sublayer_at(&x0)
                && check_graded(&m, 2).is_none()
                && check_fault_independence(&m, 1).is_none()
                && check_crash_display(&m, 1).is_none();
            ok &= structural;

            let deadlines: &[u16] = match scope {
                Scope::Quick => &[1, 2],
                Scope::Full => &[1, 2, 3],
            };
            for &r in deadlines {
                let m = MobileModel::new(3, FloodMin::new(r));
                // Similarity connectivity of every layer on the explored region.
                let mut sim_ok = true;
                let mut frontier = m.initial_states();
                for _ in 0..r.min(2) {
                    let mut next = Vec::new();
                    for x in &frontier {
                        let layer = m.s1_layer(x);
                        sim_ok &= similarity_report_with(&m, &layer, obs).connected;
                        next.extend(layer);
                    }
                    frontier = next;
                    frontier.dedup();
                }
                ok &= sim_ok;
                let report = check_consensus_with(&m, usize::from(r), 1, obs);
                let verdict = report.violations.first().map_or("PASSED (!)", |v| v.kind());
                ok &= !report.passed();
                table.row_owned(vec![
                    format!("FloodMin({r})"),
                    r.to_string(),
                    report.states_explored.to_string(),
                    yes_no(sim_ok).to_string(),
                    verdict.to_string(),
                ]);
            }
            if matches!(scope, Scope::Full) {
                let m = MobileModel::new(3, FullInfoMin::new(2));
                let report = check_consensus_with(&m, 2, 1, obs);
                ok &= !report.passed();
                table.row_owned(vec![
                    "FullInfoMin(2)".into(),
                    "2".into(),
                    report.states_explored.to_string(),
                    "-".into(),
                    report
                        .violations
                        .first()
                        .map_or("PASSED (!)", |v| v.kind())
                        .into(),
                ]);
            }

            (table, ok)
        },
    )
}

/// Lemma 5.3 + Corollary 5.4: asynchronous read/write shared memory under
/// the synchronic layering.
pub fn shared_memory(scope: Scope) -> Experiment {
    crate::measured(
        "E-5.4",
        "Corollary 5.4 (no 1-resilient consensus in r/w shared memory)",
        |obs| {
            let mut table = Table::new(
                "Lemma 5.3 / Corollary 5.4 — async shared memory (M^rw, S^rw)",
                &["check", "instances", "holds/verdict"],
            );
            let mut ok = true;
            let m = SmModel::new(3, SmFloodMin::new(2));

            // (i) every layer action is a legal atomic schedule (layering!).
            let mut replayed = 0usize;
            let mut replay_ok = true;
            for x in m.initial_states().into_iter().take(4) {
                for action in m.actions() {
                    replay_ok &= layer_action_is_legal_schedule(&m, &x, action);
                    replayed += 1;
                }
            }
            ok &= replay_ok;
            table.row_owned(vec![
                "S^rw actions replay as W₁R₁W₂R₂ schedules (Lemma 5.3(i))".into(),
                replayed.to_string(),
                yes_no(replay_ok).into(),
            ]);

            // (ii) the bridge x(j,n)(j,A) ≡ x(j,A)(j,0) (mod j).
            let mut bridges = 0usize;
            let mut bridge_ok = true;
            for x in m.initial_states() {
                for j in Pid::all(3) {
                    bridge_ok &= m.bridge_agrees(&x, j);
                    bridges += 1;
                }
            }
            ok &= bridge_ok;
            table.row_owned(vec![
                "bridge x(j,n)(j,A) ≡ x(j,A)(j,0) mod j (Lemma 5.3(iii))".into(),
                bridges.to_string(),
                yes_no(bridge_ok).into(),
            ]);

            // (iii) layer valence connectivity on the bivalent region.
            let mut solver = ValenceSolver::with_observer(&m, 2, obs);
            let mut val_ok = true;
            let mut layers = 0usize;
            for x in m.initial_states() {
                if solver.valence(&x) == layered_core::Valence::Bivalent {
                    let layer = m.layer(&x);
                    val_ok &= valence_report(&m, &mut solver, &layer).connected;
                    layers += 1;
                }
            }
            ok &= val_ok;
            table.row_owned(vec![
                "S^rw(x) valence connected at bivalent x".into(),
                layers.to_string(),
                yes_no(val_ok).into(),
            ]);

            // (iv) the Corollary 5.4 verdicts.
            let deadlines: &[u16] = match scope {
                Scope::Quick => &[2],
                Scope::Full => &[1, 2, 3],
            };
            for &r in deadlines {
                let m = SmModel::new(3, SmFloodMin::new(r));
                let report = check_consensus_with(&m, usize::from(r), 1, obs);
                ok &= !report.passed();
                table.row_owned(vec![
                    format!("consensus verdict for SmFloodMin({r})"),
                    report.states_explored.to_string(),
                    report
                        .violations
                        .first()
                        .map_or("PASSED (!)", |v| v.kind())
                        .into(),
                ]);
            }

            (table, ok)
        },
    )
}

/// The permutation layering: transposition bridges, the diamond identity,
/// and FLP-style verdicts in asynchronous message passing.
pub fn message_passing(scope: Scope) -> Experiment {
    crate::measured(
        "E-5.per",
        "Section 5.1 MP (FLP via the permutation layering)",
        |obs| {
            let mut table = Table::new(
                "Section 5.1 (MP) — permutation layering S^per",
                &["check", "instances", "holds/verdict"],
            );
            let mut ok = true;
            let m = MpModel::new(3, MpFloodMin::new(2));

            // Transposition similarity bridges.
            let mut bridges = 0usize;
            let mut bridge_ok = true;
            for x in m.initial_states() {
                for order in permutations(3) {
                    for at in 0..2 {
                        let (a, b) = m.transposition_bridges(&x, &order, at);
                        bridge_ok &= a && b;
                        bridges += 2;
                    }
                }
            }
            ok &= bridge_ok;
            table.row_owned(vec![
                "seq ~s conc ~s swapped (transposition chain)".into(),
                bridges.to_string(),
                yes_no(bridge_ok).into(),
            ]);

            // The diamond identity.
            let mut diamonds = 0usize;
            let mut diamond_ok = true;
            for x in m.initial_states() {
                for order in permutations(3) {
                    diamond_ok &= m.diamond_identity_holds(&x, &order);
                    diamonds += 1;
                }
            }
            ok &= diamond_ok;
            table.row_owned(vec![
                "x[p₁…pₙ][p₁…p_{n−1}] = x[p₁…p_{n−1}][pₙ,p₁…] (diamond)".into(),
                diamonds.to_string(),
                yes_no(diamond_ok).into(),
            ]);

            // Layer valence connectivity at bivalent initial states.
            let mut solver = ValenceSolver::with_observer(&m, 2, obs);
            let mut val_ok = true;
            let mut layers = 0usize;
            for x in m.initial_states() {
                if solver.valence(&x) == layered_core::Valence::Bivalent {
                    let layer = m.layer(&x);
                    val_ok &= valence_report(&m, &mut solver, &layer).connected;
                    layers += 1;
                }
            }
            ok &= val_ok;
            table.row_owned(vec![
                "S^per(x) valence connected at bivalent x".into(),
                layers.to_string(),
                yes_no(val_ok).into(),
            ]);

            // FLP verdicts: flooding violates agreement/decision; collect-all
            // violates decision (it waits for the silent process forever).
            let r = 2u16;
            let m = MpModel::new(3, MpFloodMin::new(r));
            let report = check_consensus_with(&m, usize::from(r), 1, obs);
            ok &= !report.passed();
            table.row_owned(vec![
                format!("consensus verdict for MpFloodMin({r})"),
                report.states_explored.to_string(),
                report
                    .violations
                    .first()
                    .map_or("PASSED (!)", |v| v.kind())
                    .into(),
            ]);

            // The synchronic layering transferred to message passing: the bridge
            // carries over and the submodel refutes consensus just the same (the
            // paper's "completely analogous proof" remark).
            let ms = layered_async_mp::MpSyncModel::new(3, MpFloodMin::new(2));
            let mut bridge_ok = true;
            let mut bridges = 0usize;
            for x in ms.initial_states() {
                for j in Pid::all(3) {
                    bridge_ok &= ms.bridge_agrees(&x, j);
                    bridges += 1;
                }
            }
            ok &= bridge_ok;
            table.row_owned(vec![
                "synchronic-MP bridge x(j,n)(j,A) ≡ x(j,A)(j,0) mod j".into(),
                bridges.to_string(),
                yes_no(bridge_ok).into(),
            ]);
            let report = check_consensus_with(&ms, 2, 1, obs);
            ok &= !report.passed();
            table.row_owned(vec![
                "consensus verdict for MpFloodMin(2) under synchronic MP".into(),
                report.states_explored.to_string(),
                report
                    .violations
                    .first()
                    .map_or("PASSED (!)", |v| v.kind())
                    .into(),
            ]);

            let m = MpModel::new(3, MpCollectMin::new(3)).with_obligation(2);
            let report = check_consensus_with(&m, 2, 1, obs);
            ok &= !report.passed();
            table.row_owned(vec![
                "consensus verdict for MpCollectMin(quorum=n)".into(),
                report.states_explored.to_string(),
                report
                    .violations
                    .first()
                    .map_or("PASSED (!)", |v| v.kind())
                    .into(),
            ]);

            if matches!(scope, Scope::Full) {
                let m = MpModel::new(3, MpCollectMin::new(2)).with_obligation(2);
                let report = check_consensus_with(&m, 2, 1, obs);
                ok &= !report.passed();
                table.row_owned(vec![
                    "consensus verdict for MpCollectMin(quorum=n−1)".into(),
                    report.states_explored.to_string(),
                    report
                        .violations
                        .first()
                        .map_or("PASSED (!)", |v| v.kind())
                        .into(),
                ]);
            }

            (table, ok)
        },
    )
}

/// The iterated immediate snapshot extension (full-paper outlook after
/// Corollary 7.3): the same pipeline — split bridges, valence-connected
/// layers, bivalent runs, checker refutation — holds in the IIS model.
pub fn iis(scope: Scope) -> Experiment {
    crate::measured(
        "E-iis",
        "IIS extension (the same analysis transfers; full-paper outlook)",
        |obs| {
            let mut table = Table::new(
                "IIS extension — immediate-snapshot layers (skip-one)",
                &["check", "instances", "holds/verdict"],
            );
            let mut ok = true;
            let n = 3usize;
            let m = IisModel::new(n, SmFloodMin::new(2));

            // The classical IS connectivity move at every schedule and process.
            let mut bridges = 0usize;
            let mut bridge_ok = true;
            for x in m.initial_states() {
                for schedule in m.actions() {
                    for p in Pid::all(n) {
                        if let Some(holds) = m.singleton_split_bridge(&x, &schedule, p) {
                            bridge_ok &= holds;
                            bridges += 1;
                        }
                    }
                }
            }
            ok &= bridge_ok;
            table.row_owned(vec![
                "singleton-split bridges (IS connectivity move)".into(),
                bridges.to_string(),
                yes_no(bridge_ok).into(),
            ]);

            // Layer valence connectivity at bivalent initial states.
            let mut solver = ValenceSolver::with_observer(&m, 2, obs);
            let mut val_ok = true;
            let mut layers = 0usize;
            for x in m.initial_states() {
                if solver.is_bivalent(&x) {
                    let layer = m.layer(&x);
                    val_ok &= valence_report(&m, &mut solver, &layer).connected;
                    layers += 1;
                }
            }
            ok &= val_ok;
            table.row_owned(vec![
                "S(x) valence connected at bivalent x".into(),
                layers.to_string(),
                yes_no(val_ok).into(),
            ]);

            // Theorem 4.2 in IIS: an ever-bivalent run.
            let mut solver = ValenceSolver::with_observer(&m, 2, obs);
            let run = build_bivalent_run(&mut solver, 1);
            ok &= run.reached_target();
            table.row_owned(vec![
                "bivalent run of full length".into(),
                run.chain.as_ref().map_or(0, |c| c.steps()).to_string(),
                yes_no(run.reached_target()).into(),
            ]);

            // Refutation of consensus candidates, as in every other model.
            let deadlines: &[u16] = match scope {
                Scope::Quick => &[2],
                Scope::Full => &[1, 2],
            };
            for &r in deadlines {
                let m = IisModel::new(n, SmFloodMin::new(r));
                let report = check_consensus_with(&m, usize::from(r), 1, obs);
                ok &= !report.passed();
                table.row_owned(vec![
                    format!("consensus verdict for SmFloodMin({r})"),
                    report.states_explored.to_string(),
                    report
                        .violations
                        .first()
                        .map_or("PASSED (!)", |v| v.kind())
                        .into(),
                ]);
            }

            (table, ok)
        },
    )
}
