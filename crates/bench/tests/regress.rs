//! The bench regression gate against the *real* committed `BENCH_*.json`
//! records: the latest committed record must pass its own gate, and a
//! synthetically slowed copy of it must fail (the negative test that
//! proves the gate can actually fire).

use layered_bench::regress::{collect_baselines, compare, BenchRecord, Tolerance};

/// All committed baseline records, oldest PR first (the order the `bench`
/// binary's directory discovery produces).
fn committed_records() -> Vec<BenchRecord> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut names: Vec<String> = std::fs::read_dir(root)
        .expect("repo root")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    assert!(
        names.contains(&"BENCH_PR6.json".to_string()),
        "BENCH_PR6.json must be committed"
    );
    let mut records = Vec::new();
    for name in names {
        let text = std::fs::read_to_string(format!("{root}/{name}")).expect("readable");
        records.append(&mut BenchRecord::parse_lines(&text).expect("parseable"));
    }
    records
}

/// The records of the most recent committed bench file, used as the
/// stand-in for a "fresh" run (re-running the experiments here would make
/// the test hostage to CI machine speed).
fn latest_committed() -> Vec<BenchRecord> {
    let baselines = collect_baselines(&committed_records());
    baselines.latest.into_values().collect()
}

#[test]
fn committed_records_pass_their_own_gate() {
    let baselines = collect_baselines(&committed_records());
    let fresh = latest_committed();
    let verdicts = compare(&baselines, &fresh, Tolerance::default());
    assert!(!verdicts.is_empty());
    for v in &verdicts {
        assert!(v.passed(), "{}: {:?}", v.key, v.failures);
        assert!(v.baseline_wall_ns.is_some(), "{} has no baseline", v.key);
    }
}

#[test]
fn synthetically_slowed_records_fail_the_gate() {
    let baselines = collect_baselines(&committed_records());
    let slowed: Vec<BenchRecord> = latest_committed()
        .into_iter()
        .map(|mut r| {
            // 100x the committed wall time: far beyond both the 2x ratio
            // and the 50 ms floor for every committed experiment.
            r.wall_ns = r.wall_ns.saturating_mul(100);
            r
        })
        .collect();
    let verdicts = compare(&baselines, &slowed, Tolerance::default());
    for v in &verdicts {
        assert!(!v.passed(), "{} should have regressed", v.key);
        assert!(
            v.failures.iter().any(|f| f.contains("wall")),
            "{}: wall gate should fire, got {:?}",
            v.key,
            v.failures
        );
    }
}

#[test]
fn blown_up_work_counters_fail_the_gate() {
    let baselines = collect_baselines(&committed_records());
    let blown: Vec<BenchRecord> = latest_committed()
        .into_iter()
        .map(|mut r| {
            for (_, v) in &mut r.counters {
                *v = v.saturating_mul(2);
            }
            r
        })
        .collect();
    let verdicts = compare(&baselines, &blown, Tolerance::default());
    for v in &verdicts {
        assert!(!v.passed(), "{} should have failed the counter gate", v.key);
    }
}
