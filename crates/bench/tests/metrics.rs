//! The machine-readable twin of every experiment table: each experiment
//! must emit a JSON record that parses back, carries the headline engine
//! counters, and telemetry must never perturb the analysis itself.

use layered_bench::{all_experiments, Scope};
use layered_core::telemetry::json::Json;
use layered_core::telemetry::MetricsRegistry;
use layered_core::{census, census_with, check_consensus, check_consensus_with};
use layered_protocols::FloodMin;
use layered_sync_crash::CrashModel;

#[test]
fn every_experiment_emits_a_parsable_json_record() {
    for exp in all_experiments(Scope::Quick) {
        let rendered = exp.json_record().to_string();
        let parsed = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("[{}] json does not parse: {e} in {rendered}", exp.id));
        assert_eq!(parsed["id"].as_str(), Some(exp.id), "in {rendered}");
        assert_eq!(parsed["ok"].as_bool(), Some(exp.ok), "in {rendered}");
        // The headline counters are always present, defaulting to 0 when an
        // experiment never touches that engine.
        for field in [
            "wall_ns",
            "states_visited",
            "dedup_hits",
            "valence_cache_hits",
            "max_frontier_width",
        ] {
            assert!(
                parsed[field].as_u64().is_some(),
                "[{}] missing numeric field {field} in {rendered}",
                exp.id
            );
        }
        // The full metrics dump rides along for offline analysis.
        assert!(
            matches!(parsed["metrics"]["counters"], Json::Object(_)),
            "[{}] missing metrics.counters in {rendered}",
            exp.id
        );
    }
}

#[test]
fn engine_experiments_record_real_work() {
    let by_id = |id: &str| {
        all_experiments(Scope::Quick)
            .into_iter()
            .find(|e| e.id == id)
            .unwrap_or_else(|| panic!("experiment {id} exists"))
    };

    // The census experiment sweeps five models breadth-first.
    let census = by_id("E-census");
    assert!(census.metrics.counter("engine.states_visited") > 0);
    assert!(census.metrics.gauge_max("engine.frontier_width") > 0);

    // Theorem 4.2 exercises the valence solver (and its memo) heavily.
    let thm = by_id("E-4.2");
    assert!(thm.metrics.counter("valence.queries") > 0);
    assert!(thm.metrics.counter("valence.memo_hits") > 0);

    // The lower-bound experiment runs the consensus checker.
    let lb = by_id("E-6.3");
    assert!(lb.metrics.counter("engine.states_visited") > 0);
    assert!(lb.metrics.counter("checker.violations") > 0);
}

#[test]
fn telemetry_does_not_perturb_engine_results() {
    let m = CrashModel::new(3, 1, FloodMin::new(2));

    let plain = check_consensus(&m, 2, 5);
    let reg = MetricsRegistry::new();
    let observed = check_consensus_with(&m, 2, 5, &reg);
    assert_eq!(plain.states_explored, observed.states_explored);
    assert_eq!(plain.violations, observed.violations);
    assert!(reg.snapshot().counter("engine.states_visited") > 0);

    let plain = census(&m, 2);
    let reg = MetricsRegistry::new();
    let observed = census_with(&m, 2, &reg);
    assert_eq!(plain, observed);
    assert!(reg.snapshot().counter("engine.states_visited") > 0);
}

#[test]
fn quick_and_full_scopes_share_record_shape() {
    // Every record has the same top-level keys regardless of experiment, so
    // downstream tooling can ingest the JSONL stream without special cases.
    let mut keys: Option<Vec<String>> = None;
    for exp in all_experiments(Scope::Quick) {
        let Json::Object(members) = exp.json_record() else {
            panic!("record must be an object");
        };
        let these: Vec<String> = members.into_iter().map(|(k, _)| k).collect();
        match &keys {
            None => keys = Some(these),
            Some(first) => assert_eq!(first, &these, "record shape diverged at {}", exp.id),
        }
    }
}
