//! Byte-stability of the machine-readable experiment records.
//!
//! The determinism contract for `experiments --json`: two runs of the
//! same experiment produce **byte-identical** records modulo the
//! documented timing fields, regardless of `--threads`. The documented
//! timing fields are exactly the `_ns`-suffixed keys (the telemetry
//! naming convention reserves that suffix for wall-clock values — see
//! `telemetry::names`):
//!
//! * the top-level `wall_ns` of every record,
//! * every span's `total_ns` under `metrics.spans`,
//! * the `*.wall_ns` gauges (e.g. `scan.sym.quotient.wall_ns`),
//! * the `*_ns` timing histograms (e.g. `space.layer_expand_ns`).
//!
//! Everything else — counters, gauge levels, work histograms, events,
//! verdicts — must not move when the thread count changes, or parallel
//! scans are leaking scheduling order into results.

use layered_bench::{interned_scan, quotient_scan, ScanConfig};
use layered_core::telemetry::json::Json;

/// Zeroes the documented timing fields, leaving all other structure.
fn strip_timing(json: &mut Json) {
    match json {
        Json::Object(members) => {
            for (key, value) in members.iter_mut() {
                if key.ends_with("_ns") {
                    *value = Json::Null;
                } else {
                    strip_timing(value);
                }
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_timing(item);
            }
        }
        _ => {}
    }
}

fn record_modulo_timing(record: Json) -> String {
    let mut record = record;
    strip_timing(&mut record);
    record.to_string()
}

fn scan_record(threads: usize, quotient: bool) -> Json {
    let cfg = ScanConfig {
        n: 3,
        depth: 1,
        threads,
        quotient,
        ..ScanConfig::default()
    };
    let exp = if quotient {
        quotient_scan(&cfg)
    } else {
        interned_scan(&cfg)
    };
    assert!(
        exp.ok,
        "scan experiment must pass for the comparison to mean anything"
    );
    exp.json_record()
}

#[test]
fn interned_scan_records_are_identical_across_thread_counts() {
    let one = record_modulo_timing(scan_record(1, false));
    let eight = record_modulo_timing(scan_record(8, false));
    assert_eq!(
        one, eight,
        "E-scan records diverged between --threads 1 and --threads 8"
    );
    // And across repeated runs at the same thread count.
    assert_eq!(one, record_modulo_timing(scan_record(1, false)));
}

#[test]
fn quotient_scan_records_are_identical_across_thread_counts() {
    let one = record_modulo_timing(scan_record(1, true));
    let three = record_modulo_timing(scan_record(3, true));
    assert_eq!(
        one, three,
        "E-sym records diverged between --threads 1 and --threads 3"
    );
}

#[test]
fn records_are_canonical_json() {
    let record = scan_record(2, false);
    let rendered = record.to_string();
    let reparsed = Json::parse(&rendered).expect("record parses");
    assert_eq!(
        reparsed.to_string(),
        rendered,
        "parse→render round trip is byte-identical (keys sorted at the encoder boundary)"
    );
    // Spot-check that stripping really only nulled timing.
    let stripped = record_modulo_timing(record);
    assert!(stripped.contains("\"states_visited\""));
    assert!(stripped.contains("\"wall_ns\":null"));
}
