//! Byte-stability of the machine-readable experiment records.
//!
//! The determinism contract for `experiments --json`: two runs of the
//! same experiment produce **byte-identical** records modulo the
//! documented timing fields, regardless of `--threads`. The documented
//! timing fields are exactly the `_ns`-suffixed keys (the telemetry
//! naming convention reserves that suffix for wall-clock values — see
//! `telemetry::names`):
//!
//! * the top-level `wall_ns` of every record,
//! * every span's `total_ns` under `metrics.spans`,
//! * the `*.wall_ns` gauges (e.g. `scan.sym.quotient.wall_ns`),
//! * the `*_ns` timing histograms (e.g. `space.layer_expand_ns`).
//!
//! Two scheduling-dependent contention counters are additionally
//! *removed* (not zeroed) before thread-count comparisons:
//! `space.shard.contention` and `space.intern.cas_retries` count lock
//! collisions in the sharded intern table, which depend on thread timing
//! by design.
//!
//! Everything else — counters, gauge levels, work histograms, events,
//! verdicts — must not move when the thread count changes, or parallel
//! scans are leaking scheduling order into results.
//!
//! A second contract rides along since the packed encodings landed:
//! packed and boxed arenas produce byte-identical records modulo the
//! *representation-dependent* telemetry (`mem.*` footprints, `space.pack.*`,
//! and the hash-distribution metrics under `space.intern.*` /
//! `space.shard.*`). Ids, layers, verdicts and every work counter are
//! storage-independent.

use layered_bench::{interned_scan, quotient_scan, ScanConfig};
use layered_core::telemetry::json::Json;

/// Zeroes the documented timing fields, leaving all other structure.
fn strip_timing(json: &mut Json) {
    match json {
        Json::Object(members) => {
            for (key, value) in members.iter_mut() {
                if key.ends_with("_ns") {
                    *value = Json::Null;
                } else {
                    strip_timing(value);
                }
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_timing(item);
            }
        }
        _ => {}
    }
}

/// Removes object members whose key satisfies `drop`, recursively — for
/// metrics whose *presence* is scheduling- or representation-dependent.
fn strip_keys(json: &mut Json, drop: &dyn Fn(&str) -> bool) {
    match json {
        Json::Object(members) => {
            members.retain(|(key, _)| !drop(key));
            for (_, value) in members.iter_mut() {
                strip_keys(value, drop);
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_keys(item, drop);
            }
        }
        _ => {}
    }
}

/// The comparison form for thread-count stability: timing zeroed and the
/// scheduling-dependent contention counters removed.
fn record_modulo_timing(record: Json) -> String {
    let mut record = record;
    strip_timing(&mut record);
    strip_keys(&mut record, &|key| {
        key == "space.shard.contention" || key == "space.intern.cas_retries"
    });
    record.to_string()
}

/// The comparison form for packed-vs-boxed stability: timing zeroed and
/// the representation-dependent metrics removed — memory footprints,
/// packing stats, and the hash-distribution metrics of the intern table
/// (packed words hash differently than boxed states, so probe lengths,
/// load factors and shard spread legitimately move; hits and misses are
/// work counters and must not).
fn record_modulo_representation(record: Json) -> String {
    let mut record = record;
    strip_timing(&mut record);
    strip_keys(&mut record, &|key| {
        key.starts_with("mem.")
            || key.starts_with("space.pack.")
            || key.starts_with("space.shard.")
            || key == "space.intern.probe_len"
            || key == "space.intern.load_x1000"
            || key == "space.intern.cas_retries"
    });
    record.to_string()
}

fn scan_record_with(threads: usize, quotient: bool, packed: bool) -> Json {
    let cfg = ScanConfig {
        n: 3,
        depth: 1,
        threads,
        quotient,
        packed,
        ..ScanConfig::default()
    };
    let exp = if quotient {
        quotient_scan(&cfg)
    } else {
        interned_scan(&cfg)
    };
    assert!(
        exp.ok,
        "scan experiment must pass for the comparison to mean anything"
    );
    exp.json_record()
}

fn scan_record(threads: usize, quotient: bool) -> Json {
    scan_record_with(threads, quotient, true)
}

#[test]
fn interned_scan_records_are_identical_across_thread_counts() {
    let one = record_modulo_timing(scan_record(1, false));
    for threads in [2, 8] {
        assert_eq!(
            one,
            record_modulo_timing(scan_record(threads, false)),
            "E-scan records diverged between --threads 1 and --threads {threads}"
        );
    }
    // And across repeated runs at the same thread count.
    assert_eq!(one, record_modulo_timing(scan_record(1, false)));
}

#[test]
fn quotient_scan_records_are_identical_across_thread_counts() {
    let one = record_modulo_timing(scan_record(1, true));
    for threads in [2, 8] {
        assert_eq!(
            one,
            record_modulo_timing(scan_record(threads, true)),
            "E-sym records diverged between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn packed_and_boxed_interned_scans_are_identical() {
    let packed = record_modulo_representation(scan_record_with(4, false, true));
    let boxed = record_modulo_representation(scan_record_with(4, false, false));
    assert_eq!(
        packed, boxed,
        "E-scan records diverged between packed and boxed arenas"
    );
}

#[test]
fn packed_and_boxed_quotient_scans_are_identical() {
    let packed = record_modulo_representation(scan_record_with(4, true, true));
    let boxed = record_modulo_representation(scan_record_with(4, true, false));
    assert_eq!(
        packed, boxed,
        "E-sym records diverged between packed and boxed arenas"
    );
}

#[test]
fn records_are_canonical_json() {
    let record = scan_record(2, false);
    let rendered = record.to_string();
    let reparsed = Json::parse(&rendered).expect("record parses");
    assert_eq!(
        reparsed.to_string(),
        rendered,
        "parse→render round trip is byte-identical (keys sorted at the encoder boundary)"
    );
    // Spot-check that stripping really only nulled timing.
    let stripped = record_modulo_timing(record);
    assert!(stripped.contains("\"states_visited\""));
    assert!(stripped.contains("\"wall_ns\":null"));
}
