//! The E-resume experiment must pass end to end: warm reloads are
//! bit-identical and fast, resume-and-extend matches cold scans on both
//! pipelines, and the differential refresh both reuses and recomputes.

use layered_bench::{resume_roundtrip, ScanConfig};
use layered_core::telemetry::json::Json;

#[test]
fn resume_roundtrip_passes_and_records_canonically() {
    let exp = resume_roundtrip(&ScanConfig::default());
    assert!(exp.ok, "E-resume failed:\n{}", exp.table);
    assert_eq!(exp.id, "E-resume");

    // The machine-readable record is canonical JSON and carries the
    // snapshot telemetry the bench gate trends.
    let record = exp.json_record();
    let rendered = record.to_string();
    let reparsed = Json::parse(&rendered).expect("record parses");
    assert_eq!(reparsed.to_string(), rendered, "record is not canonical");
    let speedup = exp.metrics.gauge_max("scan.resume.speedup_x1000");
    assert!(
        speedup >= 5_000,
        "warm reload speedup x1000 = {speedup}, want >= 5000"
    );
    assert!(exp.metrics.counter("space.resume.loads") > 0);
    assert!(exp.metrics.gauge_max("space.snapshot.bytes_written") > 0);
}

#[test]
fn resume_roundtrip_passes_at_n3() {
    let cfg = ScanConfig {
        n: 3,
        depth: 1,
        ..ScanConfig::default()
    };
    let exp = resume_roundtrip(&cfg);
    assert!(exp.ok, "E-resume at n=3 failed:\n{}", exp.table);
}
