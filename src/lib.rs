//! # layered-consensus
//!
//! A complete, executable reproduction of Yoram Moses and Sergio Rajsbaum,
//! *"The Unified Structure of Consensus: a Layered Analysis Approach"*
//! (PODC 1998).
//!
//! The paper unifies the classical consensus impossibility results and
//! lower bounds through one abstraction — a *layering*, a successor
//! function `S : G → 2^G` over global states that carves a well-structured
//! submodel out of a model of distributed computation — and one argument:
//! if every layer is valence connected, a bivalent initial state extends to
//! an ever-bivalent run, so consensus cannot be reached. This workspace
//! turns every definition, lemma, and model of the paper into code:
//!
//! | Crate | Paper content |
//! |-------|---------------|
//! | [`core`] | §2–4: states, runs, systems, failures, valence, similarity/valence connectivity, layerings, the Theorem 4.2 engine, the consensus checker |
//! | [`sync_mobile`] | §5: the single-mobile-failure synchronous model `M^mf` and layering `S₁` (Santoro–Widmayer) |
//! | [`async_sm`] | §5.1: asynchronous r/w shared memory `M^rw`, the synchronic layering `S^rw`, and the atomic base-model interpreter (Loui–Abu-Amara) |
//! | [`async_mp`] | §5.1: asynchronous message passing and the permutation layering `S^per` (the message-passing immediate-snapshot analogue; FLP) |
//! | [`sync_crash`] | §6: the t-resilient synchronous model, layering `S^t`, and the Dolev–Strong `t+1`-round lower bound |
//! | [`iis`] | full-version outlook: the iterated immediate snapshot model under skip-one layers |
//! | [`topology`] | §7: simplexes, complexes, decision tasks, coverings, generalized valence, k-thick-connectivity, the s-diameter recurrence |
//! | [`protocols`] | the protocol library the experiments run: FloodMin, full-information, quorum-collect, RelayRace, trivial deciders |
//! | [`sim`] | the adversary-scheduler simulation runtime: seeded fault injection, schedule recording/replay, delta-debugging shrinking |
//!
//! The experiment harness (`layered-bench`, binary `experiments`)
//! regenerates a paper-vs-measured table for every numbered claim; see
//! EXPERIMENTS.md.
//!
//! ## Quickstart
//!
//! Refute a candidate consensus protocol in asynchronous message passing
//! and extract the FLP witness:
//!
//! ```
//! use layered_consensus::core::{build_bivalent_run, check_consensus, ValenceSolver};
//! use layered_consensus::async_mp::MpModel;
//! use layered_consensus::protocols::MpFloodMin;
//!
//! // Flooding with a 2-phase deadline, 3 processes, 1-resilient.
//! let model = MpModel::new(3, MpFloodMin::new(2));
//!
//! // The checker finds a concrete Agreement/Validity/Decision violation...
//! let report = check_consensus(&model, 2, 1);
//! assert!(!report.passed());
//!
//! // ...and the layering engine exhibits the bivalent run behind it.
//! let mut solver = ValenceSolver::new(&model, 2);
//! let run = build_bivalent_run(&mut solver, 1);
//! assert!(run.chain.is_some());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use layered_async_mp as async_mp;
pub use layered_async_sm as async_sm;
pub use layered_core as core;
pub use layered_iis as iis;
pub use layered_protocols as protocols;
pub use layered_sim as sim;
pub use layered_sync_crash as sync_crash;
pub use layered_sync_mobile as sync_mobile;
pub use layered_topology as topology;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use layered_async_mp::MpModel;
    pub use layered_async_sm::SmModel;
    pub use layered_core::{
        build_bivalent_run, check_consensus, similarity_report, valence_report, LayeredModel, Pid,
        Valence, ValenceSolver, Value,
    };
    pub use layered_protocols::{
        FloodMin, FullInfoMin, MpCollectMin, MpFloodMin, MpProtocol, SmFloodMin, SmProtocol,
        SyncProtocol,
    };
    pub use layered_sync_crash::CrashModel;
    pub use layered_sync_mobile::MobileModel;
    pub use layered_topology::{check_task, tasks, Complex, DecisionTask, Simplex};
}
